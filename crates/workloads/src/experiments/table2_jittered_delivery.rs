//! Table 2 — average delivery ratio inside windows that cannot be fully
//! decoded.
//!
//! Because the FEC is systematic, a jittered window is not lost outright:
//! whatever source packets arrived in time are still viewable. The table
//! reports the average fraction of source packets received inside jittered
//! windows, per capability class, for standard gossip and HEAP (evaluated at
//! a 10 s stream lag). Note the caveat from the paper: HEAP has far fewer
//! jittered windows, so its averages are computed over a much smaller (and
//! more adverse) set.

use super::common::{class_mean, pct, table1_distributions, Figure, StandardRuns};
use crate::runner::ExperimentResult;
use crate::scale::Scale;
use heap_analytics::TextTable;
use heap_simnet::time::SimDuration;

/// The viewing lag used by the table.
pub const VIEW_LAG: SimDuration = SimDuration::from_secs(10);

/// Mean delivery ratio inside jittered windows, per class.
pub fn jittered_delivery_by_class(result: &ExperimentResult) -> Vec<(&'static str, Option<f64>)> {
    result
        .classes()
        .into_iter()
        .map(|class| {
            (
                class,
                class_mean(result, class, |n| {
                    n.metrics.jittered_window_delivery_ratio(VIEW_LAG)
                }),
            )
        })
        .collect()
}

/// Builds Table 2 from the shared baseline runs.
pub fn run(runs: &StandardRuns) -> Figure {
    let mut fig = Figure::new(
        "Table 2",
        "Average delivery ratio in windows that cannot be fully decoded (10 s lag)",
    );
    let mut table = TextTable::new("Table 2 — delivery inside jittered windows");
    table.header(vec!["distribution", "class", "standard gossip", "HEAP"]);
    for dist in table1_distributions() {
        let standard = runs.standard(dist.name());
        let heap = runs.heap(dist.name());
        for class in standard.classes() {
            let std_v = class_mean(standard, class, |n| {
                n.metrics.jittered_window_delivery_ratio(VIEW_LAG)
            });
            let heap_v = class_mean(heap, class, |n| {
                n.metrics.jittered_window_delivery_ratio(VIEW_LAG)
            });
            table.row(vec![
                dist.name().to_string(),
                class.to_string(),
                pct(std_v),
                pct(heap_v),
            ]);
        }
    }
    fig.tables.push(table);
    fig
}

/// Convenience wrapper that computes the baseline runs itself.
pub fn run_at(scale: Scale) -> Figure {
    run(&StandardRuns::compute(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_distribution_and_class() {
        let runs = StandardRuns::compute(Scale::test());
        let fig = run(&runs);
        assert_eq!(fig.tables.len(), 1);
        // 3 distributions × 3 classes.
        assert_eq!(fig.tables[0].n_rows(), 9);
        // Ratios, when present, are valid percentages between 0 and 100.
        let by_class = jittered_delivery_by_class(runs.standard("ms-691"));
        for (_, v) in by_class {
            if let Some(v) = v {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
