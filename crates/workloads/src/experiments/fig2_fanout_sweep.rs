//! Figure 2 — standard gossip under constrained, heterogeneous bandwidth.
//!
//! With the skewed ms-691 distribution ("dist1"), standard gossip with
//! fanout 7 degrades badly; raising the fanout to 15–20 helps a little, but a
//! blind increase (25–30) hurts again because the [Propose] overhead eats
//! into the scarce upload bandwidth. The same fanouts behave differently on a
//! uniform distribution with the same average ("dist2"), showing there is no
//! one-size-fits-all fanout.
//!
//! [Propose]: heap_gossip::message::GossipMessage::Propose

use super::common::{lag_cdf_series, Figure, LagKind};
use crate::bandwidth_dist::BandwidthDistribution;
use crate::runner::run_scenarios_parallel;
use crate::scale::Scale;
use crate::scenario::{ProtocolChoice, Scenario};

/// The fanouts swept on dist1 (ms-691) in the paper.
pub const DIST1_FANOUTS: [f64; 5] = [7.0, 15.0, 20.0, 25.0, 30.0];
/// The fanouts swept on dist2 (uniform) in the paper.
pub const DIST2_FANOUTS: [f64; 3] = [7.0, 15.0, 20.0];

/// The `(label, scenario)` pairs of the sweep, in figure order.
fn scenarios(
    scale: Scale,
    fanouts_dist1: &[f64],
    fanouts_dist2: &[f64],
) -> Vec<(String, Scenario)> {
    let mut specs = Vec::new();
    for &fanout in fanouts_dist1 {
        specs.push((
            format!("f={fanout} dist1"),
            Scenario::new(
                format!("fig2/ms-691/standard-f{fanout}"),
                scale,
                BandwidthDistribution::ms_691(),
                ProtocolChoice::Standard { fanout },
            ),
        ));
    }
    for &fanout in fanouts_dist2 {
        specs.push((
            format!("f={fanout} dist2"),
            Scenario::new(
                format!("fig2/uniform-691/standard-f{fanout}"),
                scale,
                BandwidthDistribution::uniform_691(),
                ProtocolChoice::Standard { fanout },
            ),
        ));
    }
    specs
}

/// Runs the Figure 2 fanout sweep, one scoped thread per scenario (the
/// results are bit-identical to running them sequentially; see
/// [`run_scenarios_parallel`]).
///
/// `fanouts_dist1`/`fanouts_dist2` default to the paper's values when `None`;
/// tests pass smaller lists to keep runtimes down.
pub fn run_with_fanouts(scale: Scale, fanouts_dist1: &[f64], fanouts_dist2: &[f64]) -> Figure {
    let mut fig = Figure::new(
        "Figure 2",
        "CDF of stream lag for 99% delivery, standard gossip, constrained heterogeneous bandwidth",
    );
    let specs = scenarios(scale, fanouts_dist1, fanouts_dist2);
    let scenario_list: Vec<Scenario> = specs.iter().map(|(_, s)| s.clone()).collect();
    let results = run_scenarios_parallel(&scenario_list);
    for ((label, _), result) in specs.into_iter().zip(&results) {
        fig.series
            .push(lag_cdf_series(result, LagKind::Delivery99, label));
    }
    fig
}

/// Runs the full paper sweep.
pub fn run(scale: Scale) -> Figure {
    run_with_fanouts(scale, &DIST1_FANOUTS, &DIST2_FANOUTS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constrained_standard_gossip_is_much_worse_than_unconstrained() {
        // Compare f=7 on the skewed distribution against the unconstrained
        // Figure 1 behaviour: at a 10 s lag far fewer nodes have 99% of the
        // stream when bandwidth is constrained and skewed.
        let scale = Scale::test();
        let fig = run_with_fanouts(scale, &[7.0], &[7.0]);
        let dist1 = fig.series_named("f=7 dist1").unwrap();
        let unconstrained = super::super::fig1_unconstrained::run(scale);
        let baseline = unconstrained.series_named("99% delivery").unwrap();
        // At this tiny test scale the congestion of a constrained run has
        // little time to build up, so compare at a small lag and only require
        // that constraining bandwidth never helps.
        let at_3s_constrained = dist1.y_at(3.0).unwrap();
        let at_3s_unconstrained = baseline.y_at(3.0).unwrap();
        assert!(
            at_3s_constrained <= at_3s_unconstrained,
            "constrained ({at_3s_constrained}%) should not beat unconstrained ({at_3s_unconstrained}%)"
        );
        assert!(
            baseline.y_at(10.0).unwrap() > 90.0,
            "unconstrained gossip must serve nearly everyone within 10s"
        );
        // The uniform distribution with the same average is better at f=7 than
        // the skewed one (dist2 has no long poor tail).
        let dist2 = fig.series_named("f=7 dist2").unwrap();
        assert!(
            dist2.y_at(60.0).unwrap() >= dist1.y_at(60.0).unwrap(),
            "dist2 should dominate dist1 at the right edge"
        );
    }
}
