//! Figure 7 — cumulative distribution of experienced jitter (ref-691).
//!
//! Four curves: standard gossip and HEAP, each viewed with a 10 s stream lag
//! and "offline" (no deadline at all). Offline viewing shows that standard
//! gossip does eventually deliver most windows; with a real-time 10 s lag it
//! falls apart, while HEAP stays close to its offline curve.

use super::common::{jitter_cdf_series, Figure, StandardRuns};
use crate::scale::Scale;
use heap_simnet::time::SimDuration;

/// The real-time viewing lag of the figure.
pub const VIEW_LAG: SimDuration = SimDuration::from_secs(10);

/// Builds Figure 7 from the shared baseline runs.
pub fn run(runs: &StandardRuns) -> Figure {
    let mut fig = Figure::new(
        "Figure 7",
        "Cumulative distribution of nodes as a function of experienced jitter (ref-691)",
    );
    let standard = runs.standard("ref-691");
    let heap = runs.heap("ref-691");
    fig.series.push(jitter_cdf_series(
        standard,
        Some(VIEW_LAG),
        "standard gossip - 10s stream lag",
    ));
    fig.series.push(jitter_cdf_series(
        standard,
        None,
        "standard gossip - offline viewing",
    ));
    fig.series.push(jitter_cdf_series(
        heap,
        Some(VIEW_LAG),
        "HEAP - 10s stream lag",
    ));
    fig.series
        .push(jitter_cdf_series(heap, None, "HEAP - offline viewing"));
    fig
}

/// Convenience wrapper that computes the baseline runs itself.
pub fn run_at(scale: Scale) -> Figure {
    run(&StandardRuns::compute(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_at_10s_tracks_offline_much_closer_than_standard() {
        let runs = StandardRuns::compute(Scale::test());
        let fig = run(&runs);
        assert_eq!(fig.series.len(), 4);
        let value = |name: &str, x: f64| fig.series_named(name).unwrap().y_at(x).unwrap();

        // Offline viewing dominates (or equals) real-time viewing for both
        // protocols: allowing unlimited lag can only reduce jitter.
        for proto in ["standard gossip", "HEAP"] {
            let offline = value(&format!("{proto} - offline viewing"), 10.0);
            let realtime = value(&format!("{proto} - 10s stream lag"), 10.0);
            assert!(
                offline + 1e-9 >= realtime,
                "{proto}: offline {offline} < realtime {realtime}"
            );
        }
        // HEAP with a 10 s lag keeps at least as many nodes under 10% jitter
        // as standard gossip does.
        let heap_low_jitter = value("HEAP - 10s stream lag", 10.0);
        let std_low_jitter = value("standard gossip - 10s stream lag", 10.0);
        assert!(
            heap_low_jitter >= std_low_jitter,
            "HEAP {heap_low_jitter}% vs standard {std_low_jitter}% of nodes with <=10% jitter"
        );
    }
}
