//! Stream-health observability — not a paper figure, but the paper's
//! perceived-quality story (§3.4–3.5) viewed through the health layer.
//!
//! Runs ref-691 under standard gossip and under HEAP with periodic
//! health-score sampling enabled, then reports (a) per-class health-score
//! and freeze statistics, (b) the health-score distribution over nodes and
//! (c) the mean health score over stream time. HEAP's capability-aware
//! fanout should lift the weakest classes' scores without costing the
//! strongest ones.

use super::common::{Figure, StandardRuns};
use crate::bandwidth_dist::BandwidthDistribution;
use crate::runner::{run_scenarios_parallel, ExperimentResult};
use crate::scale::Scale;
use crate::scenario::{ProtocolChoice, Scenario};
use heap_analytics::{Series, TextTable};
use heap_simnet::time::SimDuration;

/// The health-score sampling bucket width.
const BUCKET: SimDuration = SimDuration::from_secs(5);

/// "Percentage of surviving nodes with a health score ≤ x" series, sampled
/// at every fifth point of the 0–100 score axis.
pub fn score_cdf_series(result: &ExperimentResult, name: impl Into<String>) -> Series {
    let scores: Vec<f64> = result.survivors().map(|n| n.health.score).collect();
    let total = scores.len().max(1) as f64;
    let points = (0..=20)
        .map(|i| {
            let x = 5.0 * i as f64;
            let below = scores.iter().filter(|&&s| s <= x).count() as f64;
            (x, 100.0 * below / total)
        })
        .collect();
    Series::new(name).with_points(points)
}

/// Runs the health-observability comparison at the given scale.
pub fn run(scale: Scale) -> Figure {
    let dist = BandwidthDistribution::ref_691();
    let scenarios: Vec<Scenario> = [
        ProtocolChoice::Standard { fanout: 7.0 },
        ProtocolChoice::Heap { fanout: 7.0 },
    ]
    .into_iter()
    .map(|protocol| {
        Scenario::new(
            format!("health/{}", protocol.label()),
            scale,
            dist.clone(),
            protocol,
        )
        .with_health_series(BUCKET)
    })
    .collect();
    let results = run_scenarios_parallel(&scenarios);

    let mut fig = Figure::new(
        "Stream health",
        "Per-class health scores, score distribution and health over time (ref-691)",
    );

    let mut table = TextTable::new("stream health by capability class (ref-691)");
    table.header(vec![
        "class",
        "standard score",
        "HEAP score",
        "standard freezes",
        "HEAP freezes",
    ]);
    let (standard, heap) = (&results[0], &results[1]);
    for class in standard.classes() {
        let stats = |r: &ExperimentResult| {
            let nodes: Vec<_> = r.class_survivors(class).collect();
            let mean_score =
                nodes.iter().map(|n| n.health.score).sum::<f64>() / nodes.len().max(1) as f64;
            let freezes: u64 = nodes.iter().map(|n| n.health.freezes).sum();
            (mean_score, freezes)
        };
        let (std_score, std_freezes) = stats(standard);
        let (heap_score, heap_freezes) = stats(heap);
        table.row(vec![
            class.to_string(),
            format!("{std_score:.1}"),
            format!("{heap_score:.1}"),
            std_freezes.to_string(),
            heap_freezes.to_string(),
        ]);
    }
    fig.tables.push(table);

    for (label, result) in [("standard f=7", standard), ("HEAP f=7", heap)] {
        fig.series
            .push(score_cdf_series(result, format!("score CDF - {label}")));
        let series = result
            .health_series
            .as_ref()
            .expect("health sampling enabled above");
        let mut over_time = series.mean_series();
        over_time.name = format!("mean health over time - {label}");
        fig.series.push(over_time);
    }
    fig
}

/// Renders the Prometheus exposition of the shared baseline runs — the
/// `repro --metrics-out` payload ([`crate::health_export::exposition`]).
pub fn baseline_exposition(runs: &StandardRuns) -> String {
    let pairs: Vec<(&str, &ExperimentResult)> = runs.iter().collect();
    crate::health_export::exposition(&pairs).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_figure_reports_all_views() {
        let fig = run(Scale::test());
        assert_eq!(fig.tables.len(), 1);
        assert_eq!(fig.tables[0].n_rows(), 3, "one row per ref-691 class");
        // Two runs × (score CDF + health-over-time).
        assert_eq!(fig.series.len(), 4);
        let cdf = fig
            .series_named("score CDF - HEAP f=7")
            .expect("heap score cdf");
        assert_eq!(cdf.points.first().map(|p| p.0), Some(0.0));
        assert_eq!(cdf.points.last(), Some(&(100.0, 100.0)));
        let over_time = fig
            .series_named("mean health over time - HEAP f=7")
            .expect("heap health over time");
        assert!(!over_time.is_empty());
        for (_, y) in &over_time.points {
            assert!((0.0..=100.0).contains(y));
        }
    }

    #[test]
    fn baseline_exposition_renders() {
        let runs = StandardRuns::compute(Scale::test().with_nodes(16).with_windows(1));
        let text = baseline_exposition(&runs);
        assert!(text.contains("# TYPE heap_health_score gauge"));
        assert!(text.contains("run=\"ref-691/heap\""));
    }
}
