//! Figures 5, 6a and 6b — percentage of jitter-free windows per class.
//!
//! With a 10 s stream lag, standard gossip leaves poor nodes with a largely
//! jittered stream while HEAP brings every class above ~90 % of jitter-free
//! windows; the gap is widest on the skewed ms-691 distribution (Fig. 6a)
//! and still clear on ref-724 (Fig. 6b), where the extra global capacity
//! benefits everyone.

use super::common::{class_mean, pct, Figure, StandardRuns};
use crate::runner::ExperimentResult;
use crate::scale::Scale;
use heap_analytics::TextTable;
use heap_simnet::time::SimDuration;

/// The viewing lag used by these figures.
pub const VIEW_LAG: SimDuration = SimDuration::from_secs(10);

/// Mean percentage of jitter-free windows per class for one run.
pub fn jitter_free_by_class(
    result: &ExperimentResult,
    lag: SimDuration,
) -> Vec<(&'static str, Option<f64>)> {
    result
        .classes()
        .into_iter()
        .map(|class| {
            (
                class,
                class_mean(result, class, |n| Some(n.metrics.jitter_free_fraction(lag))),
            )
        })
        .collect()
}

/// Builds Figures 5 (ref-691), 6a (ms-691) and 6b (ref-724) from the shared
/// baseline runs.
pub fn run(runs: &StandardRuns) -> Figure {
    let mut fig = Figure::new(
        "Figures 5 / 6a / 6b",
        "Average percentage of jitter-free windows by capability class (10 s stream lag)",
    );
    for (paper_id, dist) in [
        ("Figure 5", "ref-691"),
        ("Figure 6a", "ms-691"),
        ("Figure 6b", "ref-724"),
    ] {
        let standard = runs.standard(dist);
        let heap = runs.heap(dist);
        let mut table = TextTable::new(format!("{paper_id} — jitter-free windows ({dist})"));
        table.header(vec!["class", "standard gossip", "HEAP"]);
        for class in standard.classes() {
            let std_v = class_mean(standard, class, |n| {
                Some(n.metrics.jitter_free_fraction(VIEW_LAG))
            });
            let heap_v = class_mean(heap, class, |n| {
                Some(n.metrics.jitter_free_fraction(VIEW_LAG))
            });
            table.row(vec![class.to_string(), pct(std_v), pct(heap_v)]);
        }
        fig.tables.push(table);
    }
    fig
}

/// Convenience wrapper that computes the baseline runs itself.
pub fn run_at(scale: Scale) -> Figure {
    run(&StandardRuns::compute(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_improves_poor_class_jitter_on_skewed_distribution() {
        let runs = StandardRuns::compute(Scale::test());
        let fig = run(&runs);
        assert_eq!(fig.tables.len(), 3);

        let std_by_class = jitter_free_by_class(runs.standard("ms-691"), VIEW_LAG);
        let heap_by_class = jitter_free_by_class(runs.heap("ms-691"), VIEW_LAG);
        let poor = |v: &Vec<(&'static str, Option<f64>)>| {
            v.iter()
                .find(|(c, _)| *c == "512kbps")
                .and_then(|(_, x)| *x)
                .unwrap_or(0.0)
        };
        let poor_std = poor(&std_by_class);
        let poor_heap = poor(&heap_by_class);
        assert!(
            poor_heap >= poor_std,
            "HEAP poor-class jitter-free {poor_heap:.2} should be at least standard's {poor_std:.2}"
        );
        // System-wide, HEAP must deliver at least as many jitter-free windows.
        let overall = |r: &ExperimentResult| {
            let vals: Vec<f64> = r
                .survivors()
                .map(|n| n.metrics.jitter_free_fraction(VIEW_LAG))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(overall(runs.heap("ms-691")) >= overall(runs.standard("ms-691")));
    }
}
