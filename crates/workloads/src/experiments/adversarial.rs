//! Adversarial robustness suite — not a paper figure, but the paper's
//! robustness claims (§3.6) stress-tested far beyond the crash scenarios it
//! reports.
//!
//! Each fault class runs ref-691 under standard gossip and under HEAP with
//! health sampling enabled, and reports (a) per-fault-class health scores and
//! delivery ratios, and (b) the mean health score over stream time for every
//! run — the curve that must visibly dip during a fault epoch and climb back
//! after it heals. Faults are injected through the seed-deterministic
//! [`FaultSpec`]/[`FaultPlan`](heap_simnet::FaultPlan) pipeline, so every run
//! here is bit-identical on the flat and sharded engines.

use super::common::Figure;
use crate::bandwidth_dist::BandwidthDistribution;
use crate::runner::{run_scenarios_parallel, ExperimentResult};
use crate::scale::Scale;
use crate::scenario::{ChurnSpec, FaultSpec, FreeRiderSpec, ProtocolChoice, Scenario};
use heap_analytics::{Series, TextTable};
use heap_simnet::loss::LossModel;
use heap_simnet::time::SimDuration;
use heap_streaming::source::StreamConfig;

/// The fault classes the suite exercises, one scenario pair each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Two regions mutually unreachable for a quarter of the stream, then
    /// healed ([`FaultSpec::partition`]).
    Partition,
    /// A quarter of the receivers dies at one instant
    /// ([`FaultSpec::regional_crash`]).
    RegionalCrash,
    /// Gilbert–Elliott bursty loss on every link
    /// ([`LossModel::bursty_default`]).
    BurstyLoss,
    /// Upload capacity cycling between full and reduced
    /// ([`FaultSpec::diurnal`]).
    Diurnal,
    /// A join stampede mid-stream ([`ChurnSpec::FlashCrowd`]).
    FlashCrowd,
    /// Free-riders advertising inflated capability while under-serving
    /// ([`FreeRiderSpec`]).
    FreeRiders,
}

impl FaultClass {
    /// Every fault class, in presentation order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Partition,
        FaultClass::RegionalCrash,
        FaultClass::BurstyLoss,
        FaultClass::Diurnal,
        FaultClass::FlashCrowd,
        FaultClass::FreeRiders,
    ];

    /// A short label for table rows and series names.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::Partition => "partition",
            FaultClass::RegionalCrash => "regional crash",
            FaultClass::BurstyLoss => "bursty loss",
            FaultClass::Diurnal => "diurnal bandwidth",
            FaultClass::FlashCrowd => "flash crowd",
            FaultClass::FreeRiders => "free-riders",
        }
    }

    /// Applies the fault to a scenario. Epochs scale with the stream length
    /// (`stream_secs`) so the same class definition works at test and paper
    /// scale.
    fn apply(&self, scenario: Scenario, stream_secs: f64) -> Scenario {
        match self {
            FaultClass::Partition => scenario
                .with_fault(FaultSpec::regions(2).partition(0.25 * stream_secs, 0.5 * stream_secs)),
            FaultClass::RegionalCrash => {
                scenario.with_fault(FaultSpec::regions(4).regional_crash(3, 0.4 * stream_secs, 5))
            }
            FaultClass::BurstyLoss => scenario.with_loss(LossModel::bursty_default()),
            FaultClass::Diurnal => scenario
                .with_fault(FaultSpec::regions(1).diurnal(0.5 * stream_secs, vec![1.0, 0.55])),
            FaultClass::FlashCrowd => scenario.with_churn(ChurnSpec::FlashCrowd {
                fraction: 0.2,
                at_secs: (0.3 * stream_secs) as u64,
                spread_secs: ((0.1 * stream_secs) as u64).max(1),
            }),
            FaultClass::FreeRiders => scenario.with_free_riders(FreeRiderSpec::default_adversary()),
        }
    }
}

/// The health-sampling bucket width for a given stream length: fine enough
/// to resolve fault epochs at test scale, bounded below at one second.
fn health_bucket(stream_secs: f64) -> SimDuration {
    SimDuration::from_secs_f64((stream_secs / 8.0).max(1.0))
}

/// The protocols compared in every fault class.
fn protocols() -> [ProtocolChoice; 2] {
    [
        ProtocolChoice::Standard { fanout: 7.0 },
        ProtocolChoice::Heap { fanout: 7.0 },
    ]
}

/// The full scenario list: for each fault class, standard gossip then HEAP,
/// all on ref-691 with health sampling enabled.
pub fn scenarios(scale: Scale) -> Vec<Scenario> {
    let stream_secs = StreamConfig::paper(scale.n_windows)
        .stream_duration()
        .as_secs_f64();
    let dist = BandwidthDistribution::ref_691();
    let mut out = Vec::with_capacity(FaultClass::ALL.len() * 2);
    for class in FaultClass::ALL {
        for protocol in protocols() {
            let scenario = Scenario::new(
                format!("adversarial/{}/{}", class.label(), protocol.label()),
                scale,
                dist.clone(),
                protocol,
            )
            .with_health_series(health_bucket(stream_secs));
            out.push(class.apply(scenario, stream_secs));
        }
    }
    out
}

/// Mean health score over surviving receivers.
fn mean_score(result: &ExperimentResult) -> f64 {
    let scores: Vec<f64> = result.survivors().map(|n| n.health.score).collect();
    scores.iter().sum::<f64>() / scores.len().max(1) as f64
}

/// Mean delivery ratio over surviving receivers.
fn mean_delivery(result: &ExperimentResult) -> f64 {
    let ratios: Vec<f64> = result
        .survivors()
        .map(|n| n.metrics.delivery_ratio())
        .collect();
    ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
}

/// Mean of the health-over-time series restricted to `x ∈ [from, to)`
/// seconds since the stream start; `None` if no bucket falls in the window.
pub fn epoch_mean(result: &ExperimentResult, from: f64, to: f64) -> Option<f64> {
    let series = result.health_series.as_ref()?.mean_series();
    let window: Vec<f64> = series
        .points
        .iter()
        .filter(|(x, _)| *x >= from && *x < to)
        .map(|(_, y)| *y)
        .collect();
    if window.is_empty() {
        None
    } else {
        Some(window.iter().sum::<f64>() / window.len() as f64)
    }
}

/// Runs the adversarial suite at the given scale.
pub fn run(scale: Scale) -> Figure {
    let scenarios = scenarios(scale);
    let results = run_scenarios_parallel(&scenarios);

    let mut fig = Figure::new(
        "Adversarial robustness",
        "Health and delivery under six fault classes, standard gossip vs HEAP (ref-691)",
    );

    let mut table = TextTable::new("adversarial robustness by fault class (ref-691)");
    table.header(vec![
        "fault class",
        "standard score",
        "HEAP score",
        "standard delivery",
        "HEAP delivery",
    ]);
    for (i, class) in FaultClass::ALL.iter().enumerate() {
        let (standard, heap) = (&results[2 * i], &results[2 * i + 1]);
        table.row(vec![
            class.label().to_string(),
            format!("{:.1}", mean_score(standard)),
            format!("{:.1}", mean_score(heap)),
            format!("{:.1}%", 100.0 * mean_delivery(standard)),
            format!("{:.1}%", 100.0 * mean_delivery(heap)),
        ]);
    }
    fig.tables.push(table);

    for (scenario, result) in scenarios.iter().zip(&results) {
        let series = result
            .health_series
            .as_ref()
            .expect("health sampling enabled above");
        let mut over_time = series.mean_series();
        over_time.name = format!(
            "health over time - {}",
            scenario
                .name
                .strip_prefix("adversarial/")
                .unwrap_or(&scenario.name)
        );
        fig.series.push(over_time);
    }
    fig
}

/// A score-distribution helper reused by figure consumers: the named
/// health-over-time series of one run.
pub fn health_series_named<'a>(fig: &'a Figure, suffix: &str) -> Option<&'a Series> {
    fig.series
        .iter()
        .find(|s| s.name.ends_with(suffix) && s.name.starts_with("health over time"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;

    #[test]
    fn adversarial_figure_covers_every_fault_class() {
        let fig = run(Scale::test());
        assert_eq!(fig.tables.len(), 1);
        assert_eq!(
            fig.tables[0].n_rows(),
            FaultClass::ALL.len(),
            "one row per fault class"
        );
        // One health-over-time series per (fault class, protocol) pair.
        assert_eq!(fig.series.len(), FaultClass::ALL.len() * 2);
        for series in &fig.series {
            assert!(!series.is_empty(), "{} is empty", series.name);
            for (_, y) in &series.points {
                assert!((0.0..=100.0).contains(y), "{}: score {y}", series.name);
            }
        }
        assert!(health_series_named(&fig, "partition/HEAP f=7").is_some());
    }

    #[test]
    fn partition_depresses_health_then_heals() {
        // One HEAP run with the partition fault: the mean health curve must
        // dip while the regions are separated and recover after the heal.
        let scale = Scale::test();
        let stream_secs = StreamConfig::paper(scale.n_windows)
            .stream_duration()
            .as_secs_f64();
        let all = scenarios(scale);
        let heap_partition = all
            .iter()
            .find(|s| s.name == "adversarial/partition/HEAP f=7")
            .expect("partition scenario exists");
        let faulted = run_scenario(heap_partition);
        let mut clean = heap_partition.clone();
        clean.name = "adversarial/no-fault/HEAP f=7".to_string();
        clean.fault = None;
        let baseline = run_scenario(&clean);
        let (start, end) = (0.25 * stream_secs, 0.5 * stream_secs);
        let during = epoch_mean(&faulted, start, end).expect("buckets inside the fault epoch");
        let clean_during = epoch_mean(&baseline, start, end).expect("baseline buckets");
        assert!(
            during < clean_during - 5.0,
            "partition must visibly depress health: faulted {during:.1} vs clean {clean_during:.1}"
        );
        // After the heal (and a recovery margin), health climbs back towards
        // the clean run.
        let after = epoch_mean(&faulted, 0.75 * stream_secs, stream_secs + 30.0)
            .expect("post-heal buckets");
        assert!(
            after > during + 5.0,
            "health must recover after the heal: during {during:.1}, after {after:.1}"
        );
    }

    #[test]
    fn heap_outperforms_standard_under_most_fault_classes() {
        let scenarios = scenarios(Scale::test());
        let results = run_scenarios_parallel(&scenarios);
        let mut heap_wins = 0;
        for (i, class) in FaultClass::ALL.iter().enumerate() {
            let (standard, heap) = (&results[2 * i], &results[2 * i + 1]);
            let (std_score, heap_score) = (mean_score(standard), mean_score(heap));
            if heap_score >= std_score {
                heap_wins += 1;
            }
            // Whatever the ordering, no fault class may collapse HEAP
            // entirely at this scale.
            assert!(
                mean_delivery(heap) > 0.5,
                "{}: HEAP delivery collapsed",
                class.label()
            );
        }
        assert!(
            heap_wins >= 3,
            "HEAP must match or beat standard gossip's health score under at \
             least three fault classes, won {heap_wins}"
        );
    }
}
