//! Table 3 — percentage of nodes receiving a completely jitter-free stream,
//! per capability class.
//!
//! Evaluated at a 10 s stream lag for ref-691 and ref-724 and at 20 s for the
//! skewed ms-691 (as in the paper). Under standard gossip on ms-691 *no*
//! class manages a jitter-free stream; HEAP brings every class to a large
//! majority of jitter-free nodes.

use super::common::{table1_distributions, Figure, StandardRuns};
use crate::runner::ExperimentResult;
use crate::scale::Scale;
use heap_analytics::TextTable;
use heap_simnet::time::SimDuration;

/// The viewing lag used for a distribution (10 s, except 20 s for ms-691).
pub fn view_lag(dist_name: &str) -> SimDuration {
    if dist_name == "ms-691" {
        SimDuration::from_secs(20)
    } else {
        SimDuration::from_secs(10)
    }
}

/// Percentage of surviving nodes of a class whose stream is completely
/// jitter-free at the given lag.
pub fn jitter_free_node_percentage(
    result: &ExperimentResult,
    class: &str,
    lag: SimDuration,
) -> f64 {
    let nodes: Vec<_> = result.class_survivors(class).collect();
    if nodes.is_empty() {
        return 0.0;
    }
    let ok = nodes
        .iter()
        .filter(|n| n.metrics.jitter_free_fraction(lag) >= 1.0)
        .count();
    100.0 * ok as f64 / nodes.len() as f64
}

/// Builds Table 3 from the shared baseline runs.
pub fn run(runs: &StandardRuns) -> Figure {
    let mut fig = Figure::new(
        "Table 3",
        "Percentage of nodes receiving a jitter-free stream by capability class",
    );
    let mut table = TextTable::new("Table 3 — nodes with a fully jitter-free stream");
    table.header(vec![
        "distribution (lag)",
        "class",
        "standard gossip",
        "HEAP",
    ]);
    for dist in table1_distributions() {
        let lag = view_lag(dist.name());
        let standard = runs.standard(dist.name());
        let heap = runs.heap(dist.name());
        for class in standard.classes() {
            table.row(vec![
                format!("{} ({}s)", dist.name(), lag.as_secs_f64() as u64),
                class.to_string(),
                format!("{:.1}%", jitter_free_node_percentage(standard, class, lag)),
                format!("{:.1}%", jitter_free_node_percentage(heap, class, lag)),
            ]);
        }
    }
    fig.tables.push(table);
    fig
}

/// Convenience wrapper that computes the baseline runs itself.
pub fn run_at(scale: Scale) -> Figure {
    run(&StandardRuns::compute(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_serves_at_least_as_many_jitter_free_nodes() {
        let runs = StandardRuns::compute(Scale::test());
        let fig = run(&runs);
        assert_eq!(fig.tables[0].n_rows(), 9);

        // Aggregate over all classes of the skewed distribution: the share of
        // fully jitter-free nodes under HEAP is at least standard gossip's.
        let lag = view_lag("ms-691");
        let total = |r: &ExperimentResult| {
            let nodes: Vec<_> = r.survivors().collect();
            let ok = nodes
                .iter()
                .filter(|n| n.metrics.jitter_free_fraction(lag) >= 1.0)
                .count();
            100.0 * ok as f64 / nodes.len() as f64
        };
        let heap_pct = total(runs.heap("ms-691"));
        let std_pct = total(runs.standard("ms-691"));
        assert!(
            heap_pct >= std_pct,
            "HEAP {heap_pct:.1}% vs standard {std_pct:.1}% jitter-free nodes"
        );
    }
}
