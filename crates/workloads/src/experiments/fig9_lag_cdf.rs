//! Figures 9a and 9b — cumulative distribution of stream-lag values.
//!
//! For each node, the smallest stream lag at which its stream is completely
//! jitter-free (or has at most 1 % of jittered windows); the CDF over nodes
//! is plotted for standard gossip and HEAP on ref-691 (9a) and ms-691 (9b).

use super::common::{lag_cdf_series, Figure, LagKind, StandardRuns};
use crate::scale::Scale;

/// Builds Figures 9a and 9b from the shared baseline runs.
pub fn run(runs: &StandardRuns) -> Figure {
    let mut fig = Figure::new(
        "Figure 9",
        "Cumulative distribution of nodes as a function of stream lag (no jitter / max 1% jitter)",
    );
    for dist in ["ref-691", "ms-691"] {
        let standard = runs.standard(dist);
        let heap = runs.heap(dist);
        fig.series.push(lag_cdf_series(
            standard,
            LagKind::JitterFree,
            format!("{dist}: standard gossip - no jitter"),
        ));
        fig.series.push(lag_cdf_series(
            standard,
            LagKind::MaxOnePercentJitter,
            format!("{dist}: standard gossip - max 1% jitter"),
        ));
        fig.series.push(lag_cdf_series(
            heap,
            LagKind::JitterFree,
            format!("{dist}: HEAP - no jitter"),
        ));
        fig.series.push(lag_cdf_series(
            heap,
            LagKind::MaxOnePercentJitter,
            format!("{dist}: HEAP - max 1% jitter"),
        ));
    }
    fig
}

/// Convenience wrapper that computes the baseline runs itself.
pub fn run_at(scale: Scale) -> Figure {
    run(&StandardRuns::compute(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_reaches_more_nodes_at_any_lag() {
        let runs = StandardRuns::compute(Scale::test());
        let fig = run(&runs);
        assert_eq!(fig.series.len(), 8);

        // Relaxing the jitter requirement can only move the CDF up.
        for dist in ["ref-691", "ms-691"] {
            for proto in ["standard gossip", "HEAP"] {
                let strict = fig
                    .series_named(&format!("{dist}: {proto} - no jitter"))
                    .unwrap();
                let relaxed = fig
                    .series_named(&format!("{dist}: {proto} - max 1% jitter"))
                    .unwrap();
                for x in [10.0, 30.0, 60.0] {
                    assert!(relaxed.y_at(x).unwrap() + 1e-9 >= strict.y_at(x).unwrap());
                }
            }
        }
        // On the skewed distribution HEAP's no-jitter curve dominates standard
        // gossip's at the right edge of the plot.
        let heap = fig.series_named("ms-691: HEAP - no jitter").unwrap();
        let std = fig
            .series_named("ms-691: standard gossip - no jitter")
            .unwrap();
        assert!(heap.y_at(60.0).unwrap() >= std.y_at(60.0).unwrap());
    }
}
