//! Partial-view ablation — full membership vs Cyclon under churn.
//!
//! The paper's deployment gives every node full membership knowledge, which
//! is what the fanout rule `f = ln(n) + c` assumes. Real deployments run on
//! a peer-sampling service instead; this workload checks that HEAP's fanout
//! adaptation survives that substitution: it repeats the fig. 10-style
//! catastrophic-failure run (HEAP, ref-691, a fraction of the nodes crashing
//! one third into the stream) once with full membership and once with
//! Cyclon-style partial views ([`MembershipChoice::cyclon`]), and plots the
//! per-window decodability of both runs plus the delivery-lag CDFs.
//!
//! The expected shape: the Cyclon run tracks the full-membership run closely
//! before and after the failure — partial views lose only the (tiny) chance
//! of proposing to any node at any instant, while shuffles flush dead
//! descriptors at about the speed of the failure detector.

use super::common::{lag_cdf_series, Figure, LagKind};
use super::fig10_churn::{window_coverage_series, FAILURE_POINT};
use crate::bandwidth_dist::BandwidthDistribution;
use crate::runner::run_scenarios_parallel;
use crate::scale::Scale;
use crate::scenario::{ChurnSpec, MembershipChoice, ProtocolChoice, Scenario};
use heap_simnet::time::SimDuration;
use heap_streaming::source::StreamConfig;

/// Runs the partial-view comparison at the given scale with the given crash
/// fraction (both runs execute in parallel, bit-identical to sequential).
pub fn run_with_fraction(scale: Scale, fraction: f64) -> Figure {
    let stream_secs = StreamConfig::paper(scale.n_windows)
        .stream_duration()
        .as_secs_f64();
    let churn = ChurnSpec::Catastrophic {
        fraction,
        at_secs: (stream_secs * FAILURE_POINT).round() as u64,
        detection_secs: 10,
    };
    let scenarios = vec![
        Scenario::new(
            format!("partial-view/full/{:.0}%", fraction * 100.0),
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Heap { fanout: 7.0 },
        )
        .with_churn(churn),
        Scenario::new(
            format!("partial-view/cyclon/{:.0}%", fraction * 100.0),
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Heap { fanout: 7.0 },
        )
        .with_churn(churn)
        .with_membership(MembershipChoice::cyclon()),
    ];
    let results = run_scenarios_parallel(&scenarios);
    let (full, cyclon) = (&results[0], &results[1]);

    let mut fig = Figure::new(
        "Partial view",
        format!(
            "HEAP under a {:.0}% catastrophic failure: full membership vs Cyclon partial views",
            fraction * 100.0
        ),
    );
    fig.series.push(window_coverage_series(
        full,
        SimDuration::from_secs(12),
        "full membership - 12s lag",
    ));
    fig.series.push(window_coverage_series(
        cyclon,
        SimDuration::from_secs(12),
        "cyclon - 12s lag",
    ));
    fig.series.push(lag_cdf_series(
        full,
        LagKind::Delivery99,
        "full membership CDF",
    ));
    fig.series
        .push(lag_cdf_series(cyclon, LagKind::Delivery99, "cyclon CDF"));
    fig
}

/// Runs the paper-style 20 % failure comparison.
pub fn run(scale: Scale) -> Figure {
    run_with_fraction(scale, 0.2)
}

/// The continuous-churn variant (the fig. 10 extension): instead of one
/// catastrophic failure, membership turns over for the whole stream — a
/// standby pool of receivers joins at a Poisson rate while online receivers
/// leave at a Poisson rate ([`ChurnSpec::Continuous`]) — again once with
/// full membership and once with Cyclon partial views.
///
/// The churn rates are scaled to the stream duration so roughly 12 % of the
/// population joins and 8 % leaves regardless of scale; the shapes to expect
/// are window coverage *dipping and recovering* as joiners catch up (instead
/// of fig. 10's single step), with Cyclon tracking full membership modulo
/// the shuffle-driven view refresh lag.
pub fn run_continuous(scale: Scale) -> Figure {
    let stream_minutes = StreamConfig::paper(scale.n_windows)
        .stream_duration()
        .as_secs_f64()
        / 60.0;
    let n = scale.n_nodes as f64;
    let joins_per_min = (0.12 * n / stream_minutes).max(1.0);
    let leaves_per_min = (0.08 * n / stream_minutes).max(1.0);
    let churn = ChurnSpec::Continuous {
        standby_fraction: 0.15,
        joins_per_min,
        leaves_per_min,
        detection_secs: 10,
    };
    let scenarios = vec![
        Scenario::new(
            "partial-view/continuous/full",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Heap { fanout: 7.0 },
        )
        .with_churn(churn),
        Scenario::new(
            "partial-view/continuous/cyclon",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Heap { fanout: 7.0 },
        )
        .with_churn(churn)
        .with_membership(MembershipChoice::cyclon()),
    ];
    let results = run_scenarios_parallel(&scenarios);
    let (full, cyclon) = (&results[0], &results[1]);

    let mut fig = Figure::new(
        "Partial view under continuous churn",
        format!(
            "HEAP under Poisson join/leave churn ({joins_per_min:.1} joins/min, \
             {leaves_per_min:.1} leaves/min, 15% standby pool): full membership vs Cyclon \
             partial views"
        ),
    );
    fig.series.push(window_coverage_series(
        full,
        SimDuration::from_secs(12),
        "full membership - 12s lag",
    ));
    fig.series.push(window_coverage_series(
        cyclon,
        SimDuration::from_secs(12),
        "cyclon - 12s lag",
    ));
    fig.series.push(lag_cdf_series(
        full,
        LagKind::Delivery99,
        "full membership CDF",
    ));
    fig.series
        .push(lag_cdf_series(cyclon, LagKind::Delivery99, "cyclon CDF"));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_churn_comparison_produces_both_series() {
        let fig = run_continuous(Scale::test());
        assert_eq!(fig.series.len(), 4);
        let full = fig.series_named("full membership - 12s lag").unwrap();
        let cyclon = fig.series_named("cyclon - 12s lag").unwrap();
        assert_eq!(full.points.len(), cyclon.points.len());
        // Nodes present from the start dominate early windows: coverage
        // starts well above the standby fraction's complement floor.
        assert!(
            full.points.first().unwrap().1 > 50.0,
            "first-window coverage {}",
            full.points.first().unwrap().1
        );
        // The system keeps serving through ongoing turnover.
        assert!(
            full.points.last().unwrap().1 > 20.0,
            "full-membership tail coverage {}",
            full.points.last().unwrap().1
        );
        assert!(
            cyclon.points.last().unwrap().1 > 10.0,
            "cyclon tail coverage {}",
            cyclon.points.last().unwrap().1
        );
    }

    #[test]
    fn cyclon_tracks_full_membership_under_churn() {
        let fig = run_with_fraction(Scale::test(), 0.2);
        assert_eq!(fig.series.len(), 4);
        let full = fig.series_named("full membership - 12s lag").unwrap();
        let cyclon = fig.series_named("cyclon - 12s lag").unwrap();
        assert_eq!(full.points.len(), cyclon.points.len());

        // Both substrates serve (nearly) everyone before the failure...
        assert!(full.points.first().unwrap().1 > 60.0);
        assert!(
            cyclon.points.first().unwrap().1 > 60.0,
            "cyclon first-window coverage {}",
            cyclon.points.first().unwrap().1
        );
        // ...and both keep serving a decent share of the survivors after it.
        assert!(
            cyclon.points.last().unwrap().1 > 20.0,
            "cyclon post-failure coverage {}",
            cyclon.points.last().unwrap().1
        );
        // The partial view costs at most a modest coverage gap at the tail.
        let gap = full.points.last().unwrap().1 - cyclon.points.last().unwrap().1;
        assert!(
            gap < 40.0,
            "cyclon lost {gap} percentage points vs full membership"
        );
    }
}
