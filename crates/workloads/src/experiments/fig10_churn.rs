//! Figures 10a and 10b — resilience to catastrophic failures.
//!
//! 20 % (resp. 50 %) of the nodes crash simultaneously one third into the
//! stream (t = 60 s at paper scale); survivors detect each failure ~10 s
//! later. The figure plots, for every FEC window (x-axis = its position in
//! stream time), the percentage of nodes able to decode it at a fixed
//! viewing lag. HEAP keeps serving essentially all surviving nodes with a
//! 12 s lag; standard gossip needs 20–30 s of lag and still loses more
//! windows around the failure.

use super::common::Figure;
use crate::bandwidth_dist::BandwidthDistribution;
use crate::runner::{run_scenarios_parallel, ExperimentResult};
use crate::scale::Scale;
use crate::scenario::{ChurnSpec, ProtocolChoice, Scenario};
use heap_analytics::Series;
use heap_simnet::time::SimDuration;
use heap_streaming::packet::WindowId;
use heap_streaming::source::StreamConfig;

/// Builds the per-window "percentage of nodes decoding each window" series
/// for one run at the given viewing lag. The denominator is the total number
/// of receivers, as in the paper (so the curve visibly drops to the surviving
/// fraction after the failure).
pub fn window_coverage_series(
    result: &ExperimentResult,
    lag: SimDuration,
    name: impl Into<String>,
) -> Series {
    let n_windows = result.schedule.total_windows();
    let total_nodes = result.nodes.len() as f64;
    let mut series = Series::new(name);
    for w in 0..n_windows {
        let window = WindowId::new(w);
        let decodable = result
            .nodes
            .iter()
            .filter(|n| n.metrics.window_jitter_free(window, lag))
            .count() as f64;
        let publish = result
            .schedule
            .window_publish_time(window)
            .expect("window within stream")
            .saturating_since(result.schedule.start())
            .as_secs_f64();
        series.push(publish, 100.0 * decodable / total_nodes);
    }
    series
}

/// When the catastrophic failure strikes, as a fraction of the stream length
/// (the paper crashes nodes 60 s into a ~180 s stream).
pub const FAILURE_POINT: f64 = 1.0 / 3.0;

/// Runs the Figure 10 experiments (20 % and 50 % failures, standard gossip
/// and HEAP) at the given scale and with the given failure fractions. The
/// whole sweep (two runs per fraction) executes on scoped threads, with
/// results bit-identical to the sequential path ([`run_scenarios_parallel`]).
pub fn run_with_fractions(scale: Scale, fractions: &[f64]) -> Figure {
    let mut fig = Figure::new(
        "Figure 10",
        "Percentage of nodes decoding each window under catastrophic failures (ref-691)",
    );
    let stream_secs = StreamConfig::paper(scale.n_windows)
        .stream_duration()
        .as_secs_f64();
    let at_secs = (stream_secs * FAILURE_POINT).round() as u64;
    // Two scenarios per fraction, in a fixed order: [heap, standard, ...].
    let scenarios: Vec<Scenario> = fractions
        .iter()
        .flat_map(|&fraction| {
            let churn = ChurnSpec::Catastrophic {
                fraction,
                at_secs,
                detection_secs: 10,
            };
            [
                Scenario::new(
                    format!("fig10/heap/{:.0}%", fraction * 100.0),
                    scale,
                    BandwidthDistribution::ref_691(),
                    ProtocolChoice::Heap { fanout: 7.0 },
                )
                .with_churn(churn),
                Scenario::new(
                    format!("fig10/standard/{:.0}%", fraction * 100.0),
                    scale,
                    BandwidthDistribution::ref_691(),
                    ProtocolChoice::Standard { fanout: 7.0 },
                )
                .with_churn(churn),
            ]
        })
        .collect();
    let results = run_scenarios_parallel(&scenarios);
    for (pair, &fraction) in results.chunks(2).zip(fractions) {
        let (heap, standard) = (&pair[0], &pair[1]);
        let pct_label = format!("{:.0}% failures", fraction * 100.0);
        fig.series.push(window_coverage_series(
            heap,
            SimDuration::from_secs(12),
            format!("{pct_label}: HEAP - 12s lag"),
        ));
        fig.series.push(window_coverage_series(
            standard,
            SimDuration::from_secs(20),
            format!("{pct_label}: standard gossip - 20s lag"),
        ));
        fig.series.push(window_coverage_series(
            standard,
            SimDuration::from_secs(30),
            format!("{pct_label}: standard gossip - 30s lag"),
        ));
    }
    fig
}

/// Runs the paper's two failure fractions (20 % and 50 %).
pub fn run(scale: Scale) -> Figure {
    run_with_fractions(scale, &[0.2, 0.5])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_keeps_serving_survivors_after_mass_failure() {
        // A single 50% failure at test scale keeps the test fast.
        let fig = run_with_fractions(Scale::test(), &[0.5]);
        assert_eq!(fig.series.len(), 3);
        let heap = fig.series_named("50% failures: HEAP - 12s lag").unwrap();
        assert!(!heap.is_empty());

        // Before the failure (first window) nearly everyone decodes; after the
        // failure the coverage cannot exceed the surviving fraction (~50%),
        // and HEAP should still serve a decent share of the survivors for the
        // last windows.
        let first = heap.points.first().unwrap().1;
        let last = heap.points.last().unwrap().1;
        assert!(first > 60.0, "first-window coverage only {first}%");
        assert!(
            last <= 55.0,
            "coverage after a 50% failure cannot exceed survivors ({last}%)"
        );
        assert!(
            last > 20.0,
            "HEAP should keep serving survivors, got {last}%"
        );
    }
}
