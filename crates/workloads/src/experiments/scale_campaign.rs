//! The scale campaign's dissemination figure (`repro scale`).
//!
//! A fig1-style run — standard gossip, fanout 7, unconstrained bandwidth —
//! at populations far past the paper's ~10⁴-node testbed, in
//! [`ResultDetail::Compact`] so per-node result state stays `O(n_windows)`.
//! The figure reports the 99 %-delivery lag CDF exactly like Fig. 1, the
//! run-level packet-lag distribution (the streaming per-bucket aggregate
//! that replaces whole-run per-packet vectors at this scale) and a summary
//! table with delivery ratio and per-node result memory. `docs/SCALE.md`
//! documents the memory budget and how to drive the campaign.

use super::common::{lag_cdf_series, Figure, LagKind};
use crate::bandwidth_dist::BandwidthDistribution;
use crate::runner::run_scenario;
use crate::scale::Scale;
use crate::scenario::{ProtocolChoice, ResultDetail, Scenario};
use heap_analytics::TextTable;
use heap_streaming::NodeMetrics;

/// Node count of the CI smoke configuration (`repro scale --smoke`).
pub const SMOKE_NODES: usize = 100_000;

/// Windows streamed in the smoke configuration: one window keeps the
/// 10⁵-node smoke run in CI territory while still exercising the whole
/// source → gossip → decode → compact-metrics pipeline.
pub const SMOKE_WINDOWS: u64 = 1;

/// The campaign scenario at `n` nodes over `windows` stream windows:
/// fig1's protocol configuration in compact result detail.
pub fn scenario(n: usize, windows: u64, seed: u64) -> Scenario {
    Scenario::new(
        "scale/dissemination/standard-f7",
        Scale::test()
            .with_nodes(n)
            .with_windows(windows)
            .with_seed(seed),
        BandwidthDistribution::unconstrained(),
        ProtocolChoice::Standard { fanout: 7.0 },
    )
    .with_detail(ResultDetail::Compact)
}

/// Runs the campaign figure at `n` nodes / `windows` windows.
pub fn run(n: usize, windows: u64, seed: u64) -> Figure {
    let result = run_scenario(&scenario(n, windows, seed));
    let mut fig = Figure::new(
        "Scale campaign",
        format!("fig1-style dissemination at {n} nodes ({windows} windows, compact result detail)"),
    );
    fig.series
        .push(lag_cdf_series(&result, LagKind::Delivery99, "99% delivery"));
    let lag_series = result
        .packet_lag_series
        .as_ref()
        .expect("compact runs produce the run-level lag series");
    // Render the distribution's bucket populations: x = lag bucket start
    // (seconds), y = fraction of all received packets in the bucket.
    let total: u64 = lag_series.buckets().map(|(_, b)| b.count).sum();
    let mut dist = heap_analytics::Series::new("packet lag share per 0.5s bucket");
    for (start, stats) in lag_series.buckets() {
        if stats.count > 0 {
            dist.push(start, stats.count as f64 / total.max(1) as f64);
        }
    }
    fig.series.push(dist);

    let delivered = result
        .nodes
        .iter()
        .filter(|node| node.metrics.delivery_ratio() >= 0.99)
        .count();
    let result_bytes: u64 = result
        .nodes
        .iter()
        .map(|node| match &node.metrics {
            NodeMetrics::Compact(m) => m.heap_bytes() as u64,
            NodeMetrics::Full(_) => unreachable!("campaign runs are compact"),
        })
        .sum();
    let mut table = TextTable::new("scale summary");
    table.header(vec![
        "nodes",
        "receivers >= 99% delivery",
        "packets recorded",
        "metrics bytes/node",
    ]);
    table.row(vec![
        n.to_string(),
        format!(
            "{delivered} ({:.1}%)",
            100.0 * delivered as f64 / result.nodes.len() as f64
        ),
        total.to_string(),
        format!("{:.0}", result_bytes as f64 / result.nodes.len() as f64),
    ]);
    fig.tables.push(table);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_figure_reports_delivery_and_memory() {
        // A miniature campaign run: the same code path as `repro scale`,
        // scaled down so the test stays fast.
        let fig = run(300, 2, 7);
        let cdf = fig.series_named("99% delivery").expect("cdf present");
        assert!(
            cdf.y_max().unwrap() > 95.0,
            "unconstrained standard gossip must reach nearly everyone"
        );
        let dist = fig
            .series_named("packet lag share per 0.5s bucket")
            .expect("lag distribution present");
        let share: f64 = dist.points.iter().map(|&(_, y)| y).sum();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");
        assert_eq!(fig.tables.len(), 1);
    }
}
