//! Figure 1 — unconstrained PlanetLab baseline.
//!
//! Without any upload-bandwidth cap, standard gossip with fanout 7 delivers a
//! high-quality stream to almost every node with a small stream lag: the CDF
//! of the lag needed to receive ≥ 99 % of the stream rises steeply within a
//! few seconds.

use super::common::{lag_cdf_series, Figure, LagKind};
use crate::bandwidth_dist::BandwidthDistribution;
use crate::runner::run_scenario;
use crate::scale::Scale;
use crate::scenario::{ProtocolChoice, Scenario};

/// Runs the Figure 1 experiment: unconstrained bandwidth, standard gossip,
/// fanout 7 (a single scenario, so there is no sweep to parallelise).
pub fn run(scale: Scale) -> Figure {
    let scenario = Scenario::new(
        "fig1/unconstrained/standard-f7",
        scale,
        BandwidthDistribution::unconstrained(),
        ProtocolChoice::Standard { fanout: 7.0 },
    );
    let result = run_scenario(&scenario);
    let mut fig = Figure::new(
        "Figure 1",
        "CDF of stream lag for 99% delivery, unconstrained bandwidth, standard gossip f=7",
    );
    fig.series
        .push(lag_cdf_series(&result, LagKind::Delivery99, "99% delivery"));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_gossip_reaches_almost_everyone_quickly() {
        let fig = run(Scale::test());
        let series = fig.series_named("99% delivery").expect("series present");
        // By the right edge of the plot practically every node has 99% of the
        // stream, and most reach it within a few seconds of lag.
        let final_pct = series.y_max().unwrap();
        assert!(
            final_pct > 95.0,
            "only {final_pct}% of nodes reached 99% delivery"
        );
        let at_10s = series.y_at(10.0).unwrap();
        assert!(at_10s > 90.0, "only {at_10s}% within 10s of lag");
    }
}
