//! Table 1 — the bandwidth distributions used throughout the evaluation.
//!
//! This is configuration rather than measurement: the table lists, for each
//! distribution, its capability-supply ratio (CSR), its average capability
//! and the fraction of nodes in each class, matching Table 1 of the paper.

use super::common::Figure;
use crate::bandwidth_dist::BandwidthDistribution;
use heap_analytics::TextTable;
use heap_simnet::bandwidth::Bandwidth;

/// The stream rate the CSR is computed against (600 kbps effective).
pub const STREAM_RATE: Bandwidth = Bandwidth::from_kbps(600);

/// Builds Table 1.
pub fn run() -> Figure {
    let mut fig = Figure::new("Table 1", "Upload-capability distributions");
    let mut table = TextTable::new("Table 1 — reference and skewed distributions");
    table.header(vec![
        "name",
        "CSR",
        "average",
        "classes (capability: fraction)",
    ]);
    for dist in [
        BandwidthDistribution::ref_691(),
        BandwidthDistribution::ref_724(),
        BandwidthDistribution::ms_691(),
        BandwidthDistribution::uniform_691(),
    ] {
        let avg = dist
            .average()
            .map(|b| format!("{:.0} kbps", b.as_kbps()))
            .unwrap_or_else(|| "-".into());
        let csr = dist
            .capability_supply_ratio(STREAM_RATE)
            .map(|c| format!("{c:.2}"))
            .unwrap_or_else(|| "-".into());
        let classes = if dist.classes().is_empty() {
            "uniform in [256 kbps, 1126 kbps]".to_string()
        } else {
            dist.classes()
                .iter()
                .map(|c| format!("{}: {:.2}", c.label, c.fraction))
                .collect::<Vec<_>>()
                .join(", ")
        };
        table.row(vec![dist.name().to_string(), csr, avg, classes]);
    }
    fig.tables.push(table);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_four_distributions() {
        let fig = run();
        assert_eq!(fig.tables.len(), 1);
        let t = &fig.tables[0];
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.cell(0, 0), Some("ref-691"));
        assert_eq!(t.cell(2, 0), Some("ms-691"));
        // CSR of ref-691 is ~1.15 as in the paper.
        assert!(t.cell(0, 1).unwrap().starts_with("1.1"));
    }
}
