//! One module per paper figure/table.
//!
//! Every function here takes a [`Scale`](crate::scale::Scale) (and whatever
//! pre-computed runs it can reuse), executes the necessary scenarios and
//! returns a [`Figure`]: named series and/or tables that print the same rows
//! and curves the paper reports. The `repro` binary in `heap-bench` calls
//! each of them in turn; `EXPERIMENTS.md` records the measured outcomes.

pub mod adversarial;
pub mod common;
pub mod fig10_churn;
pub mod fig1_unconstrained;
pub mod fig2_fanout_sweep;
pub mod fig3_heap_dist1;
pub mod fig4_bandwidth_usage;
pub mod fig5_6_jitter_free;
pub mod fig7_jitter_cdf;
pub mod fig8_lag_by_class;
pub mod fig9_lag_cdf;
pub mod partial_view;
pub mod scale_campaign;
pub mod stream_health;
pub mod table1_distributions;
pub mod table2_jittered_delivery;
pub mod table3_jitter_free_nodes;

pub use common::{Figure, StandardRuns};
