//! Empirical cumulative distribution functions.
//!
//! Most of the paper's figures are CDFs over nodes ("percentage of nodes
//! with stream lag ≤ x", "percentage of nodes with jitter ≤ x"). Some nodes
//! never reach the plotted condition at all (e.g. they never receive 99 % of
//! the stream); those are represented here as *missing* observations: they
//! count in the denominator but are never ≤ any finite threshold, exactly as
//! a CDF over all nodes that never reaches 100 % — which is how the paper's
//! plots behave.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a fixed population, allowing missing observations.
///
/// # Examples
///
/// ```
/// use heap_analytics::EmpiricalCdf;
///
/// // Four nodes: lags 1s, 2s, 4s, and one node that never gets there.
/// let cdf = EmpiricalCdf::with_missing(vec![Some(1.0), Some(2.0), Some(4.0), None]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.fraction_at_or_below(100.0), 0.75);
/// assert_eq!(cdf.percentile(0.5), Some(2.0));
/// assert_eq!(cdf.percentile(0.9), None); // the 90th percentile never arrives
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    /// Sorted finite observations.
    sorted: Vec<f64>,
    /// Total population size, including missing observations.
    population: usize,
    /// Non-finite inputs (NaN, ±∞) that were dropped at construction rather
    /// than silently compared.
    dropped_non_finite: usize,
}

impl EmpiricalCdf {
    /// Builds a CDF from finite observations only. Non-finite inputs (NaN,
    /// ±∞) are dropped — never compared — and the number dropped is
    /// available via [`EmpiricalCdf::dropped_non_finite`].
    pub fn new<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut dropped = 0usize;
        let mut sorted: Vec<f64> = values
            .into_iter()
            .filter(|v| {
                let keep = v.is_finite();
                if !keep {
                    dropped += 1;
                }
                keep
            })
            .collect();
        // `total_cmp` is a total order over all f64 bit patterns, so the
        // sort cannot panic even if the finiteness filter above ever lets a
        // NaN through (the pre-PR-6 `partial_cmp(..).unwrap()` could).
        sorted.sort_by(f64::total_cmp);
        let population = sorted.len();
        EmpiricalCdf {
            sorted,
            population,
            dropped_non_finite: dropped,
        }
    }

    /// Builds a CDF over a population where `None` marks a member that never
    /// attains the measured value (counted in the denominator forever).
    pub fn with_missing<I: IntoIterator<Item = Option<f64>>>(values: I) -> Self {
        let mut population = 0usize;
        let mut dropped = 0usize;
        let mut sorted = Vec::new();
        for v in values {
            population += 1;
            if let Some(v) = v {
                if v.is_finite() {
                    sorted.push(v);
                } else {
                    dropped += 1;
                }
            }
        }
        sorted.sort_by(f64::total_cmp);
        EmpiricalCdf {
            sorted,
            population,
            dropped_non_finite: dropped,
        }
    }

    /// Population size (including missing observations).
    pub fn population(&self) -> usize {
        self.population
    }

    /// Number of finite observations.
    pub fn observed(&self) -> usize {
        self.sorted.len()
    }

    /// Number of non-finite inputs (NaN, ±∞) dropped at construction. NaN
    /// propagation is explicit: callers that must not lose samples can
    /// assert this is zero instead of discovering a panic mid-sort.
    pub fn dropped_non_finite(&self) -> usize {
        self.dropped_non_finite
    }

    /// Returns `true` if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.population == 0
    }

    /// Fraction of the population with value ≤ `x`, in `[0, 1]`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.population as f64
    }

    /// The smallest observed value `v` such that at least `p` (in `[0, 1]`)
    /// of the population has value ≤ `v`, or `None` if even the largest
    /// finite observation does not cover `p` of the population (because of
    /// missing observations).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.population == 0 {
            return None;
        }
        let needed = (p.clamp(0.0, 1.0) * self.population as f64).ceil() as usize;
        if needed == 0 {
            return self.sorted.first().copied();
        }
        if needed > self.sorted.len() {
            return None;
        }
        Some(self.sorted[needed - 1])
    }

    /// The largest finite observation.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The smallest finite observation.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Samples the CDF at the given thresholds, producing `(x, fraction)`
    /// points ready for plotting or printing.
    pub fn sample_at(&self, thresholds: &[f64]) -> Vec<(f64, f64)> {
        thresholds
            .iter()
            .map(|&x| (x, self.fraction_at_or_below(x)))
            .collect()
    }

    /// All step points of the CDF: one `(value, cumulative fraction)` pair
    /// per finite observation.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / self.population as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_fractions_and_percentiles() {
        let cdf = EmpiricalCdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.population(), 4);
        assert_eq!(cdf.observed(), 4);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.percentile(0.25), Some(1.0));
        assert_eq!(cdf.percentile(0.5), Some(2.0));
        assert_eq!(cdf.percentile(1.0), Some(4.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(4.0));
    }

    #[test]
    fn missing_observations_cap_the_cdf() {
        let cdf = EmpiricalCdf::with_missing(vec![Some(1.0), None, None, Some(2.0)]);
        assert_eq!(cdf.population(), 4);
        assert_eq!(cdf.observed(), 2);
        assert_eq!(cdf.fraction_at_or_below(f64::MAX), 0.5);
        assert_eq!(cdf.percentile(0.5), Some(2.0));
        assert_eq!(cdf.percentile(0.75), None);
    }

    #[test]
    fn empty_population() {
        let cdf = EmpiricalCdf::new(Vec::<f64>::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert_eq!(cdf.percentile(0.5), None);
        assert_eq!(cdf.max(), None);
        assert_eq!(cdf.min(), None);
        assert!(cdf.points().is_empty());
    }

    #[test]
    fn non_finite_inputs_are_dropped() {
        let cdf = EmpiricalCdf::new(vec![1.0, f64::INFINITY, f64::NAN, 2.0]);
        assert_eq!(cdf.observed(), 2);
        assert_eq!(cdf.population(), 2);
        assert_eq!(cdf.dropped_non_finite(), 2);
        let cdf = EmpiricalCdf::with_missing(vec![Some(f64::INFINITY), Some(1.0)]);
        assert_eq!(cdf.population(), 2);
        assert_eq!(cdf.observed(), 1);
        assert_eq!(cdf.dropped_non_finite(), 1);
    }

    #[test]
    fn nan_samples_never_panic_the_sort() {
        // Regression: construction used `partial_cmp(..).unwrap()`, which
        // panics the moment a NaN reaches the sort. NaN samples must instead
        // be dropped, counted, and leave the remaining CDF fully usable.
        let cdf = EmpiricalCdf::new(vec![f64::NAN, 3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(cdf.observed(), 3);
        assert_eq!(cdf.dropped_non_finite(), 2);
        assert_eq!(cdf.percentile(0.5), Some(2.0));
        assert_eq!(cdf.fraction_at_or_below(1.5), 1.0 / 3.0);
        // All-NaN input degenerates to an empty CDF, not a panic.
        let all_nan = EmpiricalCdf::new(vec![f64::NAN, f64::NAN]);
        assert!(all_nan.is_empty());
        assert_eq!(all_nan.dropped_non_finite(), 2);
        assert_eq!(all_nan.percentile(0.5), None);
        // Same through the population-preserving constructor.
        let with_missing = EmpiricalCdf::with_missing(vec![Some(f64::NAN), Some(1.0), None]);
        assert_eq!(with_missing.population(), 3);
        assert_eq!(with_missing.observed(), 1);
        assert_eq!(with_missing.dropped_non_finite(), 1);
    }

    #[test]
    fn sample_at_and_points() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            cdf.sample_at(&[0.0, 2.5, 5.0]),
            vec![(0.0, 0.0), (2.5, 0.5), (5.0, 1.0)]
        );
        assert_eq!(
            cdf.points(),
            vec![(1.0, 0.25), (2.0, 0.5), (3.0, 0.75), (4.0, 1.0)]
        );
    }

    proptest! {
        #[test]
        fn fraction_is_monotone_and_bounded(mut values in proptest::collection::vec(0.0f64..1000.0, 1..100)) {
            let cdf = EmpiricalCdf::new(values.clone());
            values.sort_by(f64::total_cmp);
            let mut prev = 0.0;
            for x in [0.0, 10.0, 100.0, 500.0, 1000.0] {
                let f = cdf.fraction_at_or_below(x);
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f >= prev);
                prev = f;
            }
            prop_assert_eq!(cdf.fraction_at_or_below(1000.0), 1.0);
        }

        #[test]
        fn percentile_inverts_fraction(values in proptest::collection::vec(0.0f64..100.0, 1..50), p in 0.01f64..1.0) {
            let cdf = EmpiricalCdf::new(values);
            if let Some(v) = cdf.percentile(p) {
                prop_assert!(cdf.fraction_at_or_below(v) >= p - 1e-9);
            }
        }
    }
}
