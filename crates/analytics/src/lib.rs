//! # heap-analytics
//!
//! Result-analysis utilities for the HEAP reproduction: empirical CDFs (the
//! paper's favourite plot), descriptive statistics, per-class summaries,
//! plain-text tables/series for the benchmark harness output, bounded-memory
//! bucketed time series ([`BucketSeries`]) and a Prometheus-style text
//! exposition ([`expo::Exposition`]) for the stream-health observability
//! layer.
//!
//! The crate is deliberately free of any protocol knowledge: it consumes
//! plain numbers produced by `heap-workloads` and formats them the way the
//! paper's figures and tables do.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cdf;
pub mod expo;
pub mod series;
pub mod summary;
pub mod table;

pub use cdf::EmpiricalCdf;
pub use expo::{Exposition, MetricKind};
pub use series::{BucketSeries, BucketStats, Series};
pub use summary::{summarize, ClassSummary, Summary};
pub use table::TextTable;
