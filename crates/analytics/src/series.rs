//! Named data series, the unit of figure output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named series of `(x, y)` points — one curve of a figure.
///
/// # Examples
///
/// ```
/// use heap_analytics::Series;
///
/// let s = Series::new("HEAP - no jitter")
///     .with_points(vec![(0.0, 0.0), (5.0, 40.0), (10.0, 85.0)]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.y_at(5.0), Some(40.0));
/// println!("{s}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (as it would appear in the figure legend).
    pub name: String,
    /// The `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given legend label.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Replaces the points of the series.
    pub fn with_points(mut self, points: Vec<(f64, f64)>) -> Self {
        self.points = points;
        self
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `y` value at exactly `x`, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-12)
            .map(|(_, y)| *y)
    }

    /// The largest `y` value of the series.
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.name)?;
        for (x, y) in &self.points {
            writeln!(f, "{x:.4}\t{y:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut s = Series::new("test");
        assert!(s.is_empty());
        s.push(1.0, 10.0);
        s.push(2.0, 30.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y_at(2.0), Some(30.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_max(), Some(30.0));
        assert_eq!(Series::new("e").y_max(), None);
    }

    #[test]
    fn display_is_gnuplot_friendly() {
        let s = Series::new("curve").with_points(vec![(0.5, 1.0)]);
        let out = s.to_string();
        assert!(out.starts_with("# curve\n"));
        assert!(out.contains("0.5000\t1.0000"));
    }
}
