//! Named data series, the unit of figure output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named series of `(x, y)` points — one curve of a figure.
///
/// # Examples
///
/// ```
/// use heap_analytics::Series;
///
/// let s = Series::new("HEAP - no jitter")
///     .with_points(vec![(0.0, 0.0), (5.0, 40.0), (10.0, 85.0)]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.y_at(5.0), Some(40.0));
/// println!("{s}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (as it would appear in the figure legend).
    pub name: String,
    /// The `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given legend label.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Replaces the points of the series.
    pub fn with_points(mut self, points: Vec<(f64, f64)>) -> Self {
        self.points = points;
        self
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `y` value at exactly `x`, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-12)
            .map(|(_, y)| *y)
    }

    /// The largest `y` value of the series.
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.name)?;
        for (x, y) in &self.points {
            writeln!(f, "{x:.4}\t{y:.4}")?;
        }
        Ok(())
    }
}

/// Streaming per-bucket aggregates of one bucket of a [`BucketSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketStats {
    /// Observations that fell into this bucket.
    pub count: u64,
    /// Sum of the observed `y` values.
    pub sum: f64,
    /// Smallest observed `y` (meaningless while `count == 0`).
    pub min: f64,
    /// Largest observed `y` (meaningless while `count == 0`).
    pub max: f64,
}

impl BucketStats {
    const EMPTY: BucketStats = BucketStats {
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    /// Mean of the bucket's observations, or `None` for an empty bucket.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// A bucketed streaming series: `record(x, y)` folds each observation into
/// the aggregates (count/sum/min/max) of the bucket `floor(x / width)`.
///
/// Memory is bounded by the covered `x` range divided by the bucket width —
/// independent of the number of observations — so long runs over large node
/// populations emit fixed-size bucket rows instead of whole-run per-node
/// vectors.
///
/// # Examples
///
/// ```
/// use heap_analytics::BucketSeries;
///
/// let mut s = BucketSeries::new("health", 10.0);
/// s.record(1.0, 80.0);
/// s.record(4.0, 100.0);
/// s.record(15.0, 60.0);
/// assert_eq!(s.len(), 2);
/// let rows: Vec<_> = s.buckets().collect();
/// assert_eq!(rows[0].1.mean(), Some(90.0));
/// assert_eq!(rows[1].0, 10.0); // bucket start
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSeries {
    /// Series label (as it would appear in a figure legend).
    pub name: String,
    width: f64,
    buckets: Vec<BucketStats>,
}

impl BucketSeries {
    /// Creates an empty bucketed series.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is finite and positive.
    pub fn new(name: impl Into<String>, width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be finite and positive, got {width}"
        );
        BucketSeries {
            name: name.into(),
            width,
            buckets: Vec::new(),
        }
    }

    /// The bucket width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Folds one observation into its bucket. Observations with a negative
    /// or non-finite `x`, or a non-finite `y`, are ignored (they have no
    /// meaningful bucket).
    pub fn record(&mut self, x: f64, y: f64) {
        if !x.is_finite() || x < 0.0 || !y.is_finite() {
            return;
        }
        let idx = (x / self.width) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, BucketStats::EMPTY);
        }
        let b = &mut self.buckets[idx];
        b.count += 1;
        b.sum += y;
        b.min = b.min.min(y);
        b.max = b.max.max(y);
    }

    /// Number of buckets (dense from `x = 0` to the largest observed `x`;
    /// buckets with no observations are present but empty).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Iterates over `(bucket start x, stats)` rows, including empty gaps.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, BucketStats)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * self.width, b))
    }

    /// Renders the per-bucket means as a plain [`Series`] (x = bucket
    /// midpoint), skipping empty buckets.
    pub fn mean_series(&self) -> Series {
        let half = self.width / 2.0;
        let points = self
            .buckets()
            .filter_map(|(start, b)| b.mean().map(|m| (start + half, m)))
            .collect();
        Series::new(self.name.clone()).with_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut s = Series::new("test");
        assert!(s.is_empty());
        s.push(1.0, 10.0);
        s.push(2.0, 30.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y_at(2.0), Some(30.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_max(), Some(30.0));
        assert_eq!(Series::new("e").y_max(), None);
    }

    #[test]
    fn bucket_series_aggregates_per_bucket() {
        let mut s = BucketSeries::new("agg", 5.0);
        assert!(s.is_empty());
        assert_eq!(s.width(), 5.0);
        s.record(0.0, 10.0);
        s.record(4.999, 20.0);
        s.record(5.0, 7.0);
        s.record(17.0, 1.0);
        assert_eq!(s.len(), 4);
        let rows: Vec<_> = s.buckets().collect();
        assert_eq!(rows[0].1.count, 2);
        assert_eq!(rows[0].1.sum, 30.0);
        assert_eq!(rows[0].1.min, 10.0);
        assert_eq!(rows[0].1.max, 20.0);
        assert_eq!(rows[1].1.count, 1);
        assert_eq!(rows[2].1.count, 0, "gap buckets are present but empty");
        assert_eq!(rows[2].1.mean(), None);
        assert_eq!(rows[3].0, 15.0);
        // Mean series skips the empty gap bucket and uses midpoints.
        let mean = s.mean_series();
        assert_eq!(mean.points.len(), 3);
        assert_eq!(mean.points[0], (2.5, 15.0));
        assert_eq!(mean.points[2], (17.5, 1.0));
    }

    #[test]
    fn bucket_series_ignores_unbucketable_samples() {
        let mut s = BucketSeries::new("x", 1.0);
        s.record(-0.5, 1.0);
        s.record(f64::NAN, 1.0);
        s.record(f64::INFINITY, 1.0);
        s.record(1.0, f64::NAN);
        assert!(s.is_empty());
        // Memory stays bounded by the x range, not the sample count.
        for i in 0..10_000 {
            s.record((i % 10) as f64, 1.0);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.buckets().map(|(_, b)| b.count).sum::<u64>(), 10_000);
    }

    #[test]
    #[should_panic(expected = "bucket width must be finite and positive")]
    fn bucket_series_rejects_zero_width() {
        let _ = BucketSeries::new("bad", 0.0);
    }

    #[test]
    fn display_is_gnuplot_friendly() {
        let s = Series::new("curve").with_points(vec![(0.5, 1.0)]);
        let out = s.to_string();
        assert!(out.starts_with("# curve\n"));
        assert!(out.contains("0.5000\t1.0000"));
    }
}
