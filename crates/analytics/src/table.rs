//! Plain-text tables, the output format of the benchmark harness.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple fixed-width text table with a title, a header row and data rows.
///
/// # Examples
///
/// ```
/// use heap_analytics::TextTable;
///
/// let mut t = TextTable::new("Table 2: delivery in jittered windows");
/// t.header(vec!["class", "standard", "HEAP"]);
/// t.row(vec!["512 kbps".into(), "42.8%".into(), "83.7%".into()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("512 kbps"));
/// assert!(rendered.contains("standard"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header row.
    pub fn header<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if a header is set and the row has a different number of cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        if !self.header.is_empty() {
            assert_eq!(
                cells.len(),
                self.header.len(),
                "row has {} cells but the header has {}",
                cells.len(),
                self.header.len()
            );
        }
        self.rows.push(cells);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The cell at (`row`, `col`), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }

    fn column_widths(&self) -> Vec<usize> {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let widths = self.column_widths();
        let render_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.header.is_empty() {
            writeln!(f, "{}", render_row(&self.header))?;
            writeln!(
                f,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
            )?;
        }
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_and_rows() {
        let mut t = TextTable::new("demo");
        t.header(vec!["a", "bbbb", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["xxxx".into(), "y".into(), "z".into()]);
        let out = t.to_string();
        assert!(out.contains("== demo =="));
        assert!(out.contains("bbbb"));
        assert!(out.lines().count() >= 5);
        assert_eq!(t.title(), "demo");
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 0), Some("xxxx"));
        assert_eq!(t.cell(5, 0), None);
    }

    #[test]
    fn renders_without_header() {
        let mut t = TextTable::new("no header");
        t.row(vec!["only".into(), "row".into()]);
        let out = t.to_string();
        assert!(out.contains("only"));
    }

    #[test]
    #[should_panic(expected = "row has 1 cells but the header has 2")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("bad");
        t.header(vec!["a", "b"]);
        t.row(vec!["only".into()]);
    }
}
