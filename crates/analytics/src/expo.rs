//! Prometheus-style text exposition of metrics.
//!
//! [`Exposition`] renders metric families in the Prometheus text format
//! (version 0.0.4): a `# HELP` and `# TYPE` comment per family followed by
//! one `name{label="value",...} value` sample line each. The output is fully
//! deterministic — families render in registration order, samples in
//! insertion order, values through one shared formatter — so a golden-file
//! test can pin the export format byte for byte (timestamps are the caller's
//! business and deliberately *not* part of the rendered text).
//!
//! The builder validates metric and label names at registration time and
//! escapes label values, so malformed output cannot be constructed.

use std::fmt::Write as _;

/// The type of a metric family, as announced in its `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing counter.
    Counter,
    /// A value that can go up and down.
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One labelled sample of a metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    labels: Vec<(String, String)>,
    value: f64,
}

/// A named metric family: help text, type and its labelled samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<MetricSample>,
}

impl MetricFamily {
    /// The family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The family kind.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Number of samples added so far.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Adds one sample with the given `(label name, label value)` pairs.
    /// Returns `&mut self` so samples chain.
    ///
    /// # Panics
    ///
    /// Panics on an invalid label name (label *values* are free-form and
    /// escaped at render time).
    pub fn sample(&mut self, labels: &[(&str, &str)], value: f64) -> &mut Self {
        for (name, _) in labels {
            assert!(
                is_valid_label_name(name),
                "invalid label name {name:?} on metric {}",
                self.name
            );
        }
        self.samples.push(MetricSample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
        self
    }
}

/// A deterministic builder for a Prometheus text exposition.
///
/// # Examples
///
/// ```
/// use heap_analytics::expo::{Exposition, MetricKind};
///
/// let mut expo = Exposition::new();
/// expo.family("heap_demo_score", "A demo gauge.", MetricKind::Gauge)
///     .sample(&[("run", "ref-691/heap")], 97.5);
/// let text = expo.render();
/// assert!(text.contains("# TYPE heap_demo_score gauge"));
/// assert!(text.contains("heap_demo_score{run=\"ref-691/heap\"} 97.5"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    families: Vec<MetricFamily>,
}

impl Exposition {
    /// Creates an empty exposition.
    pub fn new() -> Self {
        Exposition::default()
    }

    /// Registers a new metric family and returns it for sample insertion.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name, a help text containing a newline,
    /// or a duplicate family name (each family renders exactly once).
    pub fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut MetricFamily {
        assert!(is_valid_metric_name(name), "invalid metric name {name:?}");
        assert!(
            !help.contains('\n'),
            "help text of {name} must be single-line"
        );
        assert!(
            !self.families.iter().any(|f| f.name == name),
            "duplicate metric family {name}"
        );
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    /// The registered families, in registration order.
    pub fn families(&self) -> &[MetricFamily] {
        &self.families
    }

    /// Looks up a family by name.
    pub fn family_named(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Renders the exposition in the Prometheus text format. Deterministic:
    /// same registrations, same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            writeln!(out, "# HELP {} {}", family.name, family.help).expect("write to string");
            writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str())
                .expect("write to string");
            for sample in &family.samples {
                out.push_str(&family.name);
                if !sample.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in sample.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write!(out, "{k}=\"{}\"", escape_label_value(v)).expect("write to string");
                    }
                    out.push('}');
                }
                writeln!(out, " {}", format_value(sample.value)).expect("write to string");
            }
        }
        out
    }
}

/// Formats a sample value the Prometheus way: integral values without a
/// fractional part, everything else through the shortest-roundtrip float
/// formatter, and the special values as `NaN` / `+Inf` / `-Inf`.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`
fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*`
fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes `\`, `"` and newlines in a label value, per the text format.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_samples_in_order() {
        let mut expo = Exposition::new();
        expo.family("a_total", "First.", MetricKind::Counter)
            .sample(&[("run", "x")], 3.0)
            .sample(&[("run", "y")], 4.5);
        expo.family("b_score", "Second.", MetricKind::Gauge)
            .sample(&[], 1.25);
        let text = expo.render();
        assert_eq!(
            text,
            "# HELP a_total First.\n\
             # TYPE a_total counter\n\
             a_total{run=\"x\"} 3\n\
             a_total{run=\"y\"} 4.5\n\
             # HELP b_score Second.\n\
             # TYPE b_score gauge\n\
             b_score 1.25\n"
        );
        assert_eq!(expo.families().len(), 2);
        assert_eq!(expo.family_named("a_total").unwrap().sample_count(), 2);
        assert_eq!(
            expo.family_named("a_total").unwrap().kind(),
            MetricKind::Counter
        );
        assert_eq!(expo.family_named("missing"), None);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut expo = Exposition::new();
        expo.family("m", "Escaping.", MetricKind::Gauge)
            .sample(&[("l", "a\"b\\c\nd")], 1.0);
        let text = expo.render();
        assert!(text.contains(r#"m{l="a\"b\\c\nd"} 1"#), "got: {text}");
    }

    #[test]
    fn special_values_render_prometheus_style() {
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(42.0), "42");
        assert_eq!(format_value(-0.5), "-0.5");
        assert_eq!(format_value(0.1 + 0.2), "0.30000000000000004");
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_metric_name("heap_health_score"));
        assert!(is_valid_metric_name("ns:sub_total"));
        assert!(!is_valid_metric_name("9lives"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name(""));
        assert!(is_valid_label_name("run_name"));
        assert!(!is_valid_label_name("run:name"));
        assert!(!is_valid_label_name(""));
    }

    #[test]
    #[should_panic(expected = "duplicate metric family")]
    fn duplicate_families_are_rejected() {
        let mut expo = Exposition::new();
        expo.family("m", "one", MetricKind::Gauge);
        expo.family("m", "two", MetricKind::Gauge);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_metric_names_are_rejected() {
        let mut expo = Exposition::new();
        expo.family("bad name", "x", MetricKind::Gauge);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn invalid_label_names_are_rejected() {
        let mut expo = Exposition::new();
        expo.family("m", "x", MetricKind::Gauge)
            .sample(&[("bad label", "v")], 1.0);
    }
}
