//! Descriptive statistics and per-class summaries.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (lower of the two middle values for even counts).
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Summarizes a sample; returns `None` for an empty sample.
///
/// # Examples
///
/// ```
/// let s = heap_analytics::summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.median, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let count = values.len();
    let mean = values.iter().sum::<f64>() / count as f64;
    let mut sorted: Vec<f64> = values.to_vec();
    // Total order over all f64 bit patterns — a stray NaN cannot panic the
    // sort (it sorts above +∞ and shows up in `max`, which is debuggable;
    // a panic mid-experiment is not).
    sorted.sort_by(f64::total_cmp);
    let median = sorted[(count - 1) / 2];
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
    Some(Summary {
        count,
        mean,
        min: sorted[0],
        max: sorted[count - 1],
        median,
        std_dev: variance.sqrt(),
    })
}

/// Values grouped by a class label (e.g. the paper's bandwidth classes
/// "256 kbps" / "768 kbps" / "2 Mbps"), summarised per class.
///
/// # Examples
///
/// ```
/// use heap_analytics::ClassSummary;
///
/// let mut cs = ClassSummary::new();
/// cs.add("poor", 0.2);
/// cs.add("poor", 0.4);
/// cs.add("rich", 0.9);
/// assert_eq!(cs.classes(), vec!["poor".to_string(), "rich".to_string()]);
/// assert!((cs.summary("poor").unwrap().mean - 0.3).abs() < 1e-12);
/// assert_eq!(cs.summary("missing"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    groups: BTreeMap<String, Vec<f64>>,
}

impl ClassSummary {
    /// Creates an empty grouping.
    pub fn new() -> Self {
        ClassSummary::default()
    }

    /// Adds one observation to a class.
    pub fn add(&mut self, class: &str, value: f64) {
        self.groups
            .entry(class.to_string())
            .or_default()
            .push(value);
    }

    /// Adds many observations to a class.
    pub fn add_all<I: IntoIterator<Item = f64>>(&mut self, class: &str, values: I) {
        self.groups
            .entry(class.to_string())
            .or_default()
            .extend(values);
    }

    /// The class labels, sorted.
    pub fn classes(&self) -> Vec<String> {
        self.groups.keys().cloned().collect()
    }

    /// The raw observations of a class.
    pub fn values(&self, class: &str) -> Option<&[f64]> {
        self.groups.get(class).map(|v| v.as_slice())
    }

    /// Descriptive statistics of one class.
    pub fn summary(&self, class: &str) -> Option<Summary> {
        self.groups.get(class).and_then(|v| summarize(v))
    }

    /// Mean value per class, sorted by class label.
    pub fn means(&self) -> Vec<(String, f64)> {
        self.groups
            .iter()
            .filter_map(|(k, v)| summarize(v).map(|s| (k.clone(), s.mean)))
            .collect()
    }

    /// Total number of observations across classes.
    pub fn len(&self) -> usize {
        self.groups.values().map(|v| v.len()).sum()
    }

    /// Returns `true` if no observation has been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty_and_single() {
        assert_eq!(summarize(&[]), None);
        let s = summarize(&[3.5]).unwrap();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn class_summary_grouping() {
        let mut cs = ClassSummary::new();
        cs.add_all("a", [1.0, 2.0, 3.0]);
        cs.add("b", 10.0);
        assert_eq!(cs.len(), 4);
        assert!(!cs.is_empty());
        assert_eq!(cs.values("a").unwrap().len(), 3);
        assert_eq!(cs.values("zzz"), None);
        let means = cs.means();
        assert_eq!(means, vec![("a".to_string(), 2.0), ("b".to_string(), 10.0)]);
        assert!(ClassSummary::new().is_empty());
    }

    proptest! {
        #[test]
        fn mean_is_between_min_and_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = summarize(&values).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.std_dev >= 0.0);
        }
    }
}
