//! Benchmarks regenerating the stream-quality figures and tables that share
//! the six baseline runs: Figures 4, 5/6, 7, 8, 9 and Tables 2 and 3.
//!
//! The baseline runs themselves are benchmarked once (`baseline_runs`); the
//! per-figure benchmarks then measure the analysis/aggregation step from the
//! precomputed runs, which is what distinguishes the figures from each other.

use criterion::{criterion_group, criterion_main, Criterion};
use heap_bench::bench_scale;
use heap_workloads::experiments::{
    fig4_bandwidth_usage, fig5_6_jitter_free, fig7_jitter_cdf, fig8_lag_by_class, fig9_lag_cdf,
    table2_jittered_delivery, table3_jitter_free_nodes, StandardRuns,
};

fn bench_baseline_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_runs");
    group.sample_size(10);
    group.bench_function("three_distributions_two_protocols", |b| {
        b.iter(|| StandardRuns::compute(bench_scale()));
    });
    group.finish();
}

fn bench_quality_figures(c: &mut Criterion) {
    let runs = StandardRuns::compute(bench_scale());
    let mut group = c.benchmark_group("quality_figures");
    group.bench_function("fig4_bandwidth_usage", |b| {
        b.iter(|| fig4_bandwidth_usage::run(&runs));
    });
    group.bench_function("fig5_6_jitter_free", |b| {
        b.iter(|| fig5_6_jitter_free::run(&runs));
    });
    group.bench_function("fig7_jitter_cdf", |b| {
        b.iter(|| fig7_jitter_cdf::run(&runs));
    });
    group.bench_function("fig8_lag_by_class", |b| {
        b.iter(|| fig8_lag_by_class::run(&runs));
    });
    group.bench_function("fig9_lag_cdf", |b| {
        b.iter(|| fig9_lag_cdf::run(&runs));
    });
    group.bench_function("table2_jittered_delivery", |b| {
        b.iter(|| table2_jittered_delivery::run(&runs));
    });
    group.bench_function("table3_jitter_free_nodes", |b| {
        b.iter(|| table3_jitter_free_nodes::run(&runs));
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_runs, bench_quality_figures);
criterion_main!(benches);
