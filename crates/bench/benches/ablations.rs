//! Ablation benchmarks: the design choices DESIGN.md calls out, each
//! exercised as a full scenario run so both the runtime cost and the code
//! path are covered.
//!
//! * fanout adaptation off (standard) vs gossip-estimated (HEAP) vs oracle
//!   average (HEAP-oracle),
//! * retransmission on vs off,
//! * lossless vs bursty loss,
//! * straggler nodes (overloaded PlanetLab machines) present or not.

use criterion::{criterion_group, criterion_main, Criterion};
use heap_bench::bench_scale;
use heap_simnet::loss::LossModel;
use heap_workloads::{run_scenario, BandwidthDistribution, ChurnSpec, ProtocolChoice, Scenario};

fn scenario(name: &str, protocol: ProtocolChoice) -> Scenario {
    Scenario::new(
        name,
        bench_scale(),
        BandwidthDistribution::ms_691(),
        protocol,
    )
    .with_churn(ChurnSpec::None)
}

fn bench_fanout_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fanout_policy");
    group.sample_size(10);
    group.bench_function("standard_f7", |b| {
        b.iter(|| {
            run_scenario(&scenario(
                "ablation/standard",
                ProtocolChoice::Standard { fanout: 7.0 },
            ))
        });
    });
    group.bench_function("heap_estimated", |b| {
        b.iter(|| {
            run_scenario(&scenario(
                "ablation/heap",
                ProtocolChoice::Heap { fanout: 7.0 },
            ))
        });
    });
    group.bench_function("heap_oracle", |b| {
        b.iter(|| {
            run_scenario(&scenario(
                "ablation/heap-oracle",
                ProtocolChoice::HeapOracle { fanout: 7.0 },
            ))
        });
    });
    group.finish();
}

fn bench_retransmission(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_retransmission");
    group.sample_size(10);
    let base = scenario("ablation/retx-on", ProtocolChoice::Heap { fanout: 7.0 })
        .with_loss(LossModel::bernoulli(0.05));
    group.bench_function("retransmission_on", |b| {
        b.iter(|| run_scenario(&base));
    });
    let gossip = base.gossip.clone().without_retransmission();
    let off = scenario("ablation/retx-off", ProtocolChoice::Heap { fanout: 7.0 })
        .with_loss(LossModel::bernoulli(0.05))
        .with_gossip(gossip);
    group.bench_function("retransmission_off", |b| {
        b.iter(|| run_scenario(&off));
    });
    group.finish();
}

fn bench_loss_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_loss_model");
    group.sample_size(10);
    group.bench_function("lossless", |b| {
        b.iter(|| {
            run_scenario(
                &scenario("ablation/lossless", ProtocolChoice::Heap { fanout: 7.0 })
                    .with_loss(LossModel::none()),
            )
        });
    });
    group.bench_function("bursty", |b| {
        b.iter(|| {
            run_scenario(
                &scenario("ablation/bursty", ProtocolChoice::Heap { fanout: 7.0 })
                    .with_loss(LossModel::bursty_default()),
            )
        });
    });
    group.finish();
}

fn bench_stragglers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_stragglers");
    group.sample_size(10);
    group.bench_function("six_percent_stragglers", |b| {
        b.iter(|| {
            run_scenario(
                &scenario("ablation/stragglers", ProtocolChoice::Heap { fanout: 7.0 })
                    .with_stragglers(0.06),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fanout_policies,
    bench_retransmission,
    bench_loss_models,
    bench_stragglers
);
criterion_main!(benches);
