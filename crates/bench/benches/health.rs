//! Health-tracker micro-benchmark: per-sample cost of the incremental
//! drift/cadence/freeze accounting (`ReceiverHealth::on_packet`), plus the
//! cost of a full report snapshot.
//!
//! The tracker sits on the per-delivery hot path of every receiver, so the
//! observability-layer budget is well under a microsecond per sample (the
//! PR records the measured number).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use heap_simnet::time::{SimDuration, SimTime};
use heap_streaming::health::{HealthConfig, ReceiverHealth};
use heap_streaming::source::{StreamConfig, StreamSchedule};

/// Samples folded into the tracker per measured iteration.
const SAMPLES: u64 = 100_000;

fn bench_health(c: &mut Criterion) {
    let schedule = StreamSchedule::new(StreamConfig::paper(4), SimTime::ZERO);
    let config = HealthConfig::for_schedule(&schedule);
    let interval = config.packet_interval;

    let mut group = c.benchmark_group("health");
    group.sample_size(20);
    group.throughput(Throughput::Elements(SAMPLES));
    group.bench_function("on_packet", |b| {
        b.iter(|| {
            let mut tracker = ReceiverHealth::new(config);
            let mut publish = config.stream_start;
            for i in 0..SAMPLES {
                publish += interval;
                let arrival = publish + SimDuration::from_micros(500 + (i % 7) * 133);
                tracker.on_packet(black_box(publish), black_box(arrival));
            }
            black_box(tracker.samples())
        });
    });

    let mut tracker = ReceiverHealth::new(config);
    let mut publish = config.stream_start;
    for i in 0..SAMPLES {
        publish += interval;
        tracker.on_packet(
            publish,
            publish + SimDuration::from_micros(500 + (i % 7) * 133),
        );
    }
    let now = publish + interval;
    group.throughput(Throughput::Elements(1));
    group.bench_function("report", |b| {
        b.iter(|| black_box(tracker.report(black_box(now))));
    });
    group.finish();
}

criterion_group!(benches, bench_health);
criterion_main!(benches);
