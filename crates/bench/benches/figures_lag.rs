//! Benchmarks regenerating the stream-lag figures (Figures 1, 2 and 3).
//!
//! Each benchmark regenerates the corresponding figure end to end (scenario
//! execution included) at the reduced benchmark scale; the `repro` binary
//! produces the same figures at the full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use heap_bench::bench_scale;
use heap_workloads::experiments::{fig1_unconstrained, fig2_fanout_sweep, fig3_heap_dist1};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_unconstrained");
    group.sample_size(10);
    group.bench_function("regenerate", |b| {
        b.iter(|| fig1_unconstrained::run(bench_scale()));
    });
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_fanout_sweep");
    group.sample_size(10);
    // The full sweep is 8 runs; benchmark a representative subset to keep the
    // harness affordable (the repro binary runs the complete sweep).
    group.bench_function("regenerate_f7_f20", |b| {
        b.iter(|| fig2_fanout_sweep::run_with_fanouts(bench_scale(), &[7.0, 20.0], &[7.0]));
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_heap_dist1");
    group.sample_size(10);
    group.bench_function("regenerate", |b| {
        b.iter(|| fig3_heap_dist1::run_at(bench_scale()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_fig2, bench_fig3);
criterion_main!(benches);
