//! Simulator-loop benchmark: raw scheduling-core throughput (events/s) at
//! 100 / 271 / 1000 / 5000 nodes, for all three scheduling-core generations
//! (PR 4 flat, PR 3 calendar, pre-PR-3 `BinaryHeap`) — the Criterion-tracked
//! companion of the `bench-json` numbers in `BENCH_4.json`.
//!
//! The workload ([`heap_bench::simloop`]) mirrors a congested dissemination
//! run: ~64 in-flight messages per node walking the network plus a standing
//! population of far-horizon timers per node.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use heap_bench::simloop::{self, Core};

/// Events per measured iteration (the workload TTL is derived from it).
const TARGET_EVENTS: u64 = 300_000;

fn bench_simloop(c: &mut Criterion) {
    let mut group = c.benchmark_group("simloop");
    group.sample_size(10);
    for &n in &[100usize, 271, 1000, 5000] {
        let ttl = simloop::ttl_for(n, TARGET_EVENTS);
        // The event count is identical across cores (asserted in the lib
        // tests); measure it once for the throughput denominator.
        let mut probe = simloop::build_sim(n, 7, ttl, Core::Flat);
        let events = probe.run_to_completion();
        group.throughput(Throughput::Elements(events));
        // Construction is untimed (batched setup), matching bench-json's
        // `simloop::measure`, so both report the same events/s quantity.
        for core in [Core::Flat, Core::Pr3, Core::Seed] {
            group.bench_function(&format!("{}_{n}_nodes", core.label()), |b| {
                b.iter_batched_ref(
                    || simloop::build_sim(n, 7, ttl, core),
                    |sim| sim.run_to_completion(),
                    BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simloop);
criterion_main!(benches);
