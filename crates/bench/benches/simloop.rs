//! Simulator-loop benchmark: raw scheduling-core throughput (events/s) at
//! 100 / 271 / 1000 / 5000 nodes, for all three scheduling-core generations
//! (PR 4 flat, PR 3 calendar, pre-PR-3 `BinaryHeap`) — the Criterion-tracked
//! companion of the `bench-json` numbers in `BENCH_4.json`.
//!
//! The workload ([`heap_bench::simloop`]) mirrors a congested dissemination
//! run: ~64 in-flight messages per node walking the network plus a standing
//! population of far-horizon timers per node.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use heap_bench::simloop::{self, Core};

/// Events per measured iteration (the workload TTL is derived from it).
const TARGET_EVENTS: u64 = 300_000;

fn bench_simloop(c: &mut Criterion) {
    let mut group = c.benchmark_group("simloop");
    group.sample_size(10);
    for &n in &[100usize, 271, 1000, 5000] {
        let ttl = simloop::ttl_for(n, TARGET_EVENTS);
        // The event count is identical across cores (asserted in the lib
        // tests); measure it once for the throughput denominator — and pin
        // the PR 8 batched bucket-drain dispatch against single-pop dispatch
        // on the full run, so a batch-path divergence fails the smoke run
        // itself on fingerprint mismatch.
        let batched = simloop::fingerprint(&mut simloop::build_sim(n, 7, ttl, Core::Flat));
        let single = simloop::fingerprint(&mut simloop::build_sim_single_pop(n, 7, ttl));
        assert_eq!(
            batched, single,
            "batched dispatch diverged from single-pop at {n} nodes"
        );
        let events = batched.0;
        group.throughput(Throughput::Elements(events));
        // Construction is untimed (batched setup), matching bench-json's
        // `simloop::measure`, so both report the same events/s quantity.
        for core in [Core::Flat, Core::Pr3, Core::Seed] {
            group.bench_function(&format!("{}_{n}_nodes", core.label()), |b| {
                b.iter_batched_ref(
                    || simloop::build_sim(n, 7, ttl, core),
                    |sim| sim.run_to_completion().expect("contract holds"),
                    BatchSize::LargeInput,
                );
            });
        }
        // The flat core with batching off: the PR 8 measurement baseline.
        group.bench_function(&format!("pr4_flat_single_pop_{n}_nodes"), |b| {
            b.iter_batched_ref(
                || simloop::build_sim_single_pop(n, 7, ttl),
                |sim| sim.run_to_completion().expect("contract holds"),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Shard counts for the sharded sweep: `HEAP_SIMLOOP_SHARDS=1,2,4` (the CI
/// shard-matrix smoke step sets it explicitly; the default is the same
/// matrix).
fn shard_counts() -> Vec<usize> {
    std::env::var("HEAP_SIMLOOP_SHARDS")
        .ok()
        .map(|spec| {
            spec.split(',')
                .filter_map(|v| v.trim().parse().ok())
                .filter(|&s| s >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

/// The PR 5 sharded core across the shard-count matrix, sequential
/// stepping (the deterministic wall-clock mode on 1-core hosts), plus the
/// scoped-thread mode at the largest size. Event counts are asserted
/// identical to the flat core so a silent divergence fails the bench.
fn bench_simloop_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("simloop_sharded");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        let ttl = simloop::ttl_for(n, TARGET_EVENTS);
        let mut probe = simloop::build_sim(n, 7, ttl, Core::Flat);
        let events = probe.run_to_completion().expect("contract holds");
        group.throughput(Throughput::Elements(events));
        for &shards in &shard_counts() {
            let mut probe = simloop::build_sim_sharded(n, 7, ttl, shards);
            assert_eq!(
                probe.run_to_completion().expect("contract holds"),
                events,
                "sharded core must process the identical event stream"
            );
            group.bench_function(&format!("sharded_{shards}_seq_{n}_nodes"), |b| {
                b.iter_batched_ref(
                    || simloop::build_sim_sharded(n, 7, ttl, shards),
                    |sim| sim.run_to_completion().expect("contract holds"),
                    BatchSize::LargeInput,
                );
            });
        }
        if n == 5000 {
            for &shards in &shard_counts() {
                if shards == 1 {
                    continue;
                }
                group.bench_function(&format!("sharded_{shards}_threaded_{n}_nodes"), |b| {
                    b.iter_batched_ref(
                        || simloop::build_sim_sharded(n, 7, ttl, shards),
                        |sim| sim.run_to_completion_threaded().expect("contract holds"),
                        BatchSize::LargeInput,
                    );
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simloop, bench_simloop_sharded);
criterion_main!(benches);
