//! Micro-benchmarks of the substrates the reproduction is built on:
//! GF(256) arithmetic, the paper-geometry FEC window codec, the
//! discrete-event simulator's message throughput and uniform peer sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use heap_fec::{gf256, DecodeWorkspace, WindowDecoder, WindowEncoder, WindowParams};
use heap_membership::{MembershipView, UniformSampler};
use heap_simnet::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_gf256(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256");
    let src: Vec<u8> = (0..1316).map(|i| (i % 251) as u8).collect();
    let mut dst = vec![0u8; 1316];
    group.throughput(Throughput::Bytes(1316));
    group.bench_function("mul_add_slice_1316B", |b| {
        b.iter(|| gf256::mul_add_slice(&mut dst, &src, 0x57));
    });
    group.finish();
}

fn bench_fec_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("fec_window");
    group.sample_size(10);
    let params = WindowParams::PAPER;
    let encoder = WindowEncoder::new(params).expect("paper geometry is valid");
    let mut rng = SmallRng::seed_from_u64(1);
    let data: Vec<Vec<u8>> = (0..params.data_packets)
        .map(|_| (0..params.packet_bytes).map(|_| rng.gen()).collect())
        .collect();
    group.throughput(Throughput::Bytes(
        (params.data_packets * params.packet_bytes) as u64,
    ));
    group.bench_function("encode_101p9_1316B", |b| {
        b.iter(|| encoder.encode(&data).expect("encode"));
    });

    let packets = encoder.encode(&data).expect("encode");
    let fill = |dec: &mut WindowDecoder| {
        for (i, p) in packets.iter().enumerate() {
            // Drop 9 data packets; decode must reconstruct them.
            if i >= 9 {
                dec.insert(i, p.clone());
            }
        }
    };

    // Hot path: a reusable workspace caches the codec, the erasure-pattern
    // inverse and the shard buffers across windows, as a streaming receiver
    // would hold one per pipeline.
    let mut ws = DecodeWorkspace::new();
    group.bench_function("decode_with_9_losses", |b| {
        b.iter_batched_ref(
            || {
                let mut dec = WindowDecoder::new(params);
                fill(&mut dec);
                dec
            },
            |dec| {
                dec.decode_with(&mut ws).expect("decodable");
                dec.reset(&mut ws);
            },
            BatchSize::LargeInput,
        );
    });

    // Cold path: a throwaway workspace per window (codec + inverse rebuilt
    // every time) — the cost the workspace amortises away.
    group.bench_function("decode_with_9_losses_cold", |b| {
        b.iter_batched_ref(
            || {
                let mut dec = WindowDecoder::new(params);
                fill(&mut dec);
                dec
            },
            |dec| dec.decode().expect("decodable"),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// A flood protocol used to measure raw simulator throughput.
struct Flood {
    n: usize,
    ttl: u32,
}

#[derive(Clone, Debug)]
struct FloodMsg(u32);
impl WireSize for FloodMsg {
    fn wire_size(&self) -> usize {
        64
    }
}

impl Protocol for Flood {
    type Message = FloodMsg;
    fn on_start(&mut self, ctx: &mut Context<'_, FloodMsg>) {
        if ctx.node_id().index() == 0 {
            for i in 1..self.n {
                ctx.send(NodeId::new(i as u32), FloodMsg(self.ttl));
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, FloodMsg>, _from: NodeId, msg: FloodMsg) {
        if msg.0 > 0 {
            let target = NodeId::new(ctx.rng().gen_range(0..self.n as u32));
            ctx.send(target, FloodMsg(msg.0 - 1));
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, FloodMsg>, _t: TimerId, _tag: u64) {}
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet");
    group.sample_size(20);
    let n = 100;
    let ttl = 200;
    // Each of the n-1 initial messages spawns a chain of `ttl` forwards.
    group.throughput(Throughput::Elements(((n - 1) * (ttl as usize + 1)) as u64));
    group.bench_function("message_chain_100_nodes", |b| {
        b.iter(|| {
            let mut sim = SimulatorBuilder::new(n, 7)
                .latency(LatencyModel::constant(SimDuration::from_millis(5)))
                .build(|_| Flood { n, ttl });
            sim.run_until(SimTime::from_secs(3600));
            sim.stats().total_messages_delivered()
        });
    });
    group.finish();
}

fn bench_peer_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    let view = MembershipView::full(271, NodeId::new(0));
    let mut rng = SmallRng::seed_from_u64(3);
    group.bench_function("select_7_of_270", |b| {
        b.iter(|| UniformSampler::select(&view, 7, &mut rng));
    });
    group.bench_function("select_56_of_270", |b| {
        b.iter(|| UniformSampler::select(&view, 56, &mut rng));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gf256,
    bench_fec_window,
    bench_simulator_throughput,
    bench_peer_sampling
);
criterion_main!(benches);
