//! Benchmark regenerating the churn-resilience figure (Figure 10).

use criterion::{criterion_group, criterion_main, Criterion};
use heap_bench::bench_scale;
use heap_workloads::experiments::fig10_churn;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_churn");
    group.sample_size(10);
    // Benchmark the 50% catastrophic-failure scenario (the heavier of the
    // paper's two); the repro binary regenerates both 20% and 50%.
    group.bench_function("regenerate_50pct_failures", |b| {
        b.iter(|| fig10_churn::run_with_fractions(bench_scale(), &[0.5]));
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
