//! Golden-file test of the Prometheus metrics exposition.
//!
//! Pins the exact bytes `repro --scale test --metrics-out` writes (minus its
//! one `# generated-at` timestamp line) against
//! `tests/golden/metrics_scale_test.prom`. Any change to the export format,
//! the metric set, the health computations or the simulation itself shows up
//! as a diff here; regenerate the golden with
//!
//! ```text
//! cargo run --release -p heap-bench --bin repro -- --scale test table1 \
//!     --metrics-out /tmp/metrics.prom
//! grep -v '^# generated-at' /tmp/metrics.prom \
//!     > crates/bench/tests/golden/metrics_scale_test.prom
//! ```

use heap_workloads::experiments::{stream_health, StandardRuns};
use heap_workloads::Scale;

const GOLDEN: &str = include_str!("golden/metrics_scale_test.prom");

#[test]
fn metrics_exposition_matches_golden_file() {
    // `repro --scale test` keeps the default seed 42 (the `--seed` flag
    // overrides it); mirror that here so this test and the CI step that
    // diffs the binary's output pin the same bytes.
    let runs = StandardRuns::compute(Scale::test().with_seed(42));
    let rendered = stream_health::baseline_exposition(&runs);
    if rendered != GOLDEN {
        let mismatch = rendered
            .lines()
            .zip(GOLDEN.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        panic!(
            "metrics exposition diverged from the golden file\n\
             first differing line: {mismatch:?}\n\
             (rendered {} lines, golden {} lines; regeneration command in the \
             module docs)",
            rendered.lines().count(),
            GOLDEN.lines().count()
        );
    }
}
