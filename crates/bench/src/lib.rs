//! # heap-bench
//!
//! Benchmark harness of the HEAP reproduction.
//!
//! Three entry points:
//!
//! * **`repro`** (`cargo run --release -p heap-bench --bin repro -- all`) —
//!   regenerates every figure and table of the paper as text series/tables.
//!   See `repro --help` for experiment selection and scaling options; the
//!   measured outputs are recorded in `EXPERIMENTS.md`.
//! * **`bench-json`** (`cargo run --release -p heap-bench --bin bench-json`)
//!   — measures the scheduling-core events/s (all four core generations:
//!   sharded, flat, PR 3 calendar, seed `BinaryHeap`) at 100–10000 nodes
//!   including the shard-count sweep, the figure-regeneration wall-clock and
//!   the bit-identity checks, and writes them as JSON with host metadata;
//!   `BENCH_5.json` at the repo root is its checked-in output (earlier
//!   `BENCH_*.json` files hold the PR 2–4 trajectories).
//! * **Criterion benches** (`cargo bench -p heap-bench`) — one benchmark per
//!   figure/table (at a reduced scale so Criterion's repeated sampling stays
//!   affordable) plus micro-benchmarks of the substrates (FEC coding,
//!   simulator event throughput via [`simloop`], dissemination rounds) and
//!   ablation benches (HEAP vs oracle estimate, retransmission on/off). The
//!   shim reports min/mean±σ with outlier rejection; `HEAP_BENCH_SAMPLES` /
//!   `HEAP_BENCH_SAMPLE_MS` shrink the measurement for CI smoke runs.

#![deny(missing_docs)]

use heap_workloads::Scale;

pub mod hostmeta;
pub mod simloop;

/// Parses the `--scale` argument shared by the repro binary and the benches.
///
/// Accepted values: `test`, `default`, `paper`.
pub fn parse_scale(value: &str) -> Option<Scale> {
    match value {
        "test" => Some(Scale::test()),
        "default" => Some(Scale::default_scale()),
        "paper" => Some(Scale::paper()),
        _ => None,
    }
}

/// The scale used by the Criterion figure benches: small enough that a full
/// figure regeneration fits in a Criterion sample.
pub fn bench_scale() -> Scale {
    Scale::test()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale_accepts_known_values() {
        assert_eq!(parse_scale("test"), Some(Scale::test()));
        assert_eq!(parse_scale("default"), Some(Scale::default_scale()));
        assert_eq!(parse_scale("paper"), Some(Scale::paper()));
        assert_eq!(parse_scale("huge"), None);
    }

    #[test]
    fn bench_scale_is_small() {
        assert!(bench_scale().n_nodes <= Scale::default_scale().n_nodes);
    }
}
