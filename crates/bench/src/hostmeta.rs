//! Host metadata for benchmark provenance (CPU model, core count).
//!
//! Every accessor degrades gracefully: an absent `/proc/cpuinfo`, a cpuinfo
//! without the x86 `model name` field (common on ARM hosts) or an empty
//! value all come back as `"unknown"` instead of panicking a benchmark run
//! on the one host whose metadata we most want to record.

/// The host's CPU model string, from `/proc/cpuinfo` (best effort;
/// `"unknown"` when unavailable).
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .map(|info| parse_cpu_model(&info))
        .unwrap_or_else(|_| "unknown".to_string())
}

/// Extracts the CPU model from cpuinfo text, `"unknown"` when the field is
/// absent or empty. The value is interpolated into hand-built JSON, so it is
/// restricted to a JSON-safe character set.
pub fn parse_cpu_model(cpuinfo: &str) -> String {
    cpuinfo
        .lines()
        .find(|l| l.starts_with("model name"))
        .and_then(|l| l.split(':').nth(1))
        .map(|m| {
            m.trim()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric() || " ()@._/+-".contains(*c))
                .collect::<String>()
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The host's available core count (1 when undeterminable).
pub fn core_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_x86_style_cpuinfo() {
        let info = "processor\t: 0\n\
                    vendor_id\t: GenuineIntel\n\
                    model name\t: Intel(R) Xeon(R) CPU @ 2.20GHz\n\
                    cache size\t: 39424 KB\n";
        assert_eq!(parse_cpu_model(info), "Intel(R) Xeon(R) CPU @ 2.20GHz");
    }

    #[test]
    fn arm_style_cpuinfo_without_model_name_is_unknown() {
        // ARM cpuinfo exposes "CPU implementer"/"CPU part" lines instead of
        // the x86 "model name" field.
        let info = "processor\t: 0\n\
                    BogoMIPS\t: 50.00\n\
                    CPU implementer\t: 0x41\n\
                    CPU part\t: 0xd0c\n";
        assert_eq!(parse_cpu_model(info), "unknown");
    }

    #[test]
    fn degenerate_cpuinfo_is_unknown_not_a_panic() {
        assert_eq!(parse_cpu_model(""), "unknown");
        assert_eq!(parse_cpu_model("model name"), "unknown");
        assert_eq!(parse_cpu_model("model name\t:   \n"), "unknown");
    }

    #[test]
    fn model_is_json_safe() {
        let info = "model name : weird\"model\\with\ncontrol";
        let parsed = parse_cpu_model(info);
        assert_eq!(parsed, "weirdmodelwith");
        assert!(!parsed.contains('"') && !parsed.contains('\\'));
    }

    #[test]
    fn core_count_is_positive() {
        assert!(core_count() >= 1);
    }
}
