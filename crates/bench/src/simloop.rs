//! The simulator-loop benchmark workload: raw scheduler throughput.
//!
//! A deliberately protocol-light workload — stride-walk message chains plus
//! periodic timers — so that the measured cost is dominated by the
//! scheduling core (event queue, timer table, command buffer) rather than by
//! protocol logic; the forwarding target comes from a per-node stride
//! instead of an RNG draw for the same reason (the network still samples a
//! random latency per hop, which is what spreads events across the
//! calendar). Used by the `simloop` Criterion bench and by `bench-json`
//! (which records the events/s of every scheduling-core generation —
//! including the PR 5 shard-count sweep — in `BENCH_5.json`).

use heap_simnet::prelude::*;
use rand::Rng;
use std::time::Instant;

/// Number of message chains seeded per receiver. Sized so the near-horizon
/// pending set resembles a congested dissemination run (a node with a
/// backlogged upload queue keeps dozens of departures in flight): ~6 k
/// pending events at 100 nodes, ~320 k at 5000.
pub const CHAINS_PER_NODE: usize = 64;

/// Standing far-horizon timers per node, re-armed with 8–24 s delays. A
/// paper-scale gossip run keeps a large population of far-out timer events
/// pending (retransmission and failure-detection timers — a sizeable share
/// of the ~19 k pending events measured at 271 nodes), and they are
/// precisely the events a calendar queue parks in its overflow heap while a
/// binary heap carries them in every sift. The long periods keep the
/// population standing for the whole run at a negligible event-count share,
/// like the constantly re-created short timers of the real protocol.
pub const FAR_TIMERS_PER_NODE: usize = 64;

/// How often each standing far timer re-arms before expiring for good —
/// enough to keep the population standing through the message phase without
/// leaving a long timer-only tail after the chains drain.
const FAR_TIMER_REARMS: u32 = 2;

/// A stride-walk flood: node 0 seeds [`CHAINS_PER_NODE`] chains per peer;
/// every delivery forwards the message to the node's next stride target
/// until the TTL expires. Each node also re-arms a periodic timer so the
/// event mix contains both `Deliver` and `Timer` events.
pub struct Flood {
    n: u32,
    ttl: u32,
    timer_rounds: u32,
    /// Message chains node 0 seeds per receiver (the per-node in-flight
    /// load; [`CHAINS_PER_NODE`] for the throughput benches, far lighter for
    /// the scale campaign so a 10⁶-node run stays within minutes).
    chains: u32,
    /// Standing far timers each node arms at start.
    far_timers: u32,
    /// Remaining re-arms shared by this node's standing far timers.
    far_budget: u32,
    /// Next forwarding target and the per-node stride that advances it, so
    /// chains keep mixing across the node population without an RNG draw.
    target: u32,
    stride: u32,
}

/// The flood message: a TTL counter on a 64-byte wire footprint.
#[derive(Clone, Debug)]
pub struct FloodMsg(u32);

impl WireSize for FloodMsg {
    fn wire_size(&self) -> usize {
        64
    }
}

impl Flood {
    /// The next forwarding target: one stride step around the node ring.
    #[inline]
    fn next_target(&mut self) -> NodeId {
        let t = self.target;
        self.target += self.stride;
        if self.target >= self.n {
            self.target -= self.n;
        }
        NodeId::new(t)
    }

    /// A deterministic 8–24 s standing-timer delay. Advances the node's
    /// stride walk so consecutive calls (the 64 timers armed at start, and
    /// every re-arm) draw different delays and the standing population
    /// spreads over the whole 8–24 s band instead of firing in lockstep.
    #[inline]
    fn far_delay(&mut self) -> SimDuration {
        let step = self.next_target().as_u32();
        let jitter_ms = (u64::from(step) * 37) % 16_000;
        SimDuration::from_millis(8_000 + jitter_ms)
    }
}

impl Protocol for Flood {
    type Message = FloodMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, FloodMsg>) {
        if ctx.node_id().index() == 0 {
            for _ in 0..self.chains {
                for i in 1..self.n {
                    ctx.send(NodeId::new(i), FloodMsg(self.ttl));
                }
            }
        }
        let phase = SimDuration::from_micros(ctx.rng().gen_range(0..200_000u64));
        ctx.set_timer(phase, 0);
        for _ in 0..self.far_timers {
            let delay = self.far_delay();
            ctx.set_timer(delay, 1);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, FloodMsg>, _from: NodeId, msg: FloodMsg) {
        if msg.0 > 0 {
            let target = self.next_target();
            ctx.send(target, FloodMsg(msg.0 - 1));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, FloodMsg>, _timer: TimerId, tag: u64) {
        if tag == 1 {
            // A standing far timer fired: re-arm it (like a retransmission
            // round) until the node's budget runs out.
            if self.far_budget > 0 {
                self.far_budget -= 1;
                let delay = self.far_delay();
                ctx.set_timer(delay, 1);
            }
        } else if self.timer_rounds > 0 {
            self.timer_rounds -= 1;
            let target = self.next_target();
            ctx.send(target, FloodMsg(1));
            ctx.set_timer(SimDuration::from_millis(200), 0);
        }
    }
}

/// The TTL that makes an `n`-node run process roughly `target_events`
/// events. The floor keeps the virtual run long enough that chain events
/// dominate the (n-proportional) standing-timer events at every size — a
/// large `n` therefore processes more events than `target_events` rather
/// than degenerating into a timer-only workload.
pub fn ttl_for(n: usize, target_events: u64) -> u32 {
    let chains = (CHAINS_PER_NODE * (n - 1)) as u64;
    (target_events / chains.max(1)).clamp(40, 100_000) as u32
}

/// Which scheduling-core generation a measurement runs. All three produce
/// bit-identical simulations (asserted by `heap-simnet`'s differential
/// tests); they exist so each overhaul can be measured against its
/// predecessors in the same binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Core {
    /// Pre-PR-3 core: `BinaryHeap` queue, per-callback command-buffer
    /// allocation, seed-shim `u128` uniform reductions.
    Seed,
    /// PR 3 core: calendar queue, pooled deferred command buffer, per-event
    /// dispatch.
    Pr3,
    /// PR 4 core (the default): eager command dispatch, batched same-tick
    /// deliveries, SoA stats and node state, cached latency sampling.
    Flat,
}

impl Core {
    /// Short machine-readable label used in bench output and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            Core::Seed => "seed_binary_heap",
            Core::Pr3 => "pr3_calendar",
            Core::Flat => "pr4_flat",
        }
    }
}

/// The benchmark's canonical latency model: uniform 2–264 ms — a
/// power-of-two span (2^18 µs ≈ 262 ms) keeps the per-hop draw
/// division-free, while the spread itself is PlanetLab-like (RTTs plus
/// queueing, covering hundreds of calendar buckets).
fn bench_latency() -> LatencyModel {
    LatencyModel::uniform(
        SimDuration::from_micros(2_000),
        SimDuration::from_micros(2_000 + ((1 << 18) - 1)),
    )
}

/// One [`Flood`] protocol instance per node — the single workload definition
/// shared by every core's builder, so the flat baselines and the sharded
/// sweep can never drift apart.
fn make_flood(n: usize, ttl: u32) -> impl FnMut(NodeId) -> Flood {
    move |id| Flood {
        n: n as u32,
        ttl,
        timer_rounds: 50,
        chains: CHAINS_PER_NODE as u32,
        far_timers: FAR_TIMERS_PER_NODE as u32,
        far_budget: FAR_TIMERS_PER_NODE as u32 * FAR_TIMER_REARMS,
        target: id.as_u32(),
        stride: ((2 * id.as_u32() + 3) % n as u32).max(1),
    }
}

/// Builds the benchmark simulator on the canonical uniform 2–264 ms
/// latency model (see `bench_latency`) with lossless links
/// (loss would truncate the chains and decouple the event count from the
/// TTL); `core` selects the scheduling-core generation.
pub fn build_sim(n: usize, seed: u64, ttl: u32, core: Core) -> Simulator<Flood> {
    build_sim_with_latency(n, seed, ttl, core, bench_latency())
}

/// [`build_sim`] with an explicit latency model (ablation measurements).
pub fn build_sim_with_latency(
    n: usize,
    seed: u64,
    ttl: u32,
    core: Core,
    latency: LatencyModel,
) -> Simulator<Flood> {
    let mut builder = SimulatorBuilder::new(n, seed)
        .latency(latency)
        .loss(LossModel::none());
    builder = match core {
        Core::Seed => builder.baseline_scheduling_core(),
        Core::Pr3 => builder.pr3_scheduling_core(),
        Core::Flat => builder,
    };
    builder.build(make_flood(n, ttl))
}

/// [`build_sim`] with the PR 8 batched bucket-drain dispatch switched off:
/// the single-pop measurement baseline for the batch-vs-single comparison in
/// `bench-json` and the CI fingerprint smoke. Only meaningful for
/// [`Core::Flat`] (the compat cores never batch).
pub fn build_sim_single_pop(n: usize, seed: u64, ttl: u32) -> Simulator<Flood> {
    SimulatorBuilder::new(n, seed)
        .latency(bench_latency())
        .loss(LossModel::none())
        .single_pop_dispatch()
        .build(make_flood(n, ttl))
}

/// [`build_sim`] with the event queue replaced by the LIFO ablation stack
/// (`SimulatorBuilder::lifo_queue_for_ablation`): O(1) unordered push/pop,
/// zero ordering work. The run is not a valid simulation — events fire in
/// stack order — but the [`Flood`] event population is order-invariant
/// (lossless links, no timer cancels, TTL-driven chains, count-budgeted
/// re-arms), so the processed-event count matches the real runs exactly
/// (asserted by `bench-json` and the unit tests). Timing it prices the
/// full non-queue pipeline per event; the gap to a real run is the
/// queue's share of per-event cost — the same LIFO-substitution
/// methodology as the PR 4 ablation in `BENCH_4.json`.
pub fn build_sim_lifo(n: usize, seed: u64, ttl: u32) -> Simulator<Flood> {
    SimulatorBuilder::new(n, seed)
        .latency(bench_latency())
        .loss(LossModel::none())
        .lifo_queue_for_ablation()
        .build(make_flood(n, ttl))
}

/// [`build_sim_lifo`] with a FIFO deque instead of a stack
/// (`SimulatorBuilder::fifo_queue_for_ablation`). Push order tracks
/// virtual time statistically, so the FIFO run walks the node population
/// in the same breadth-first pattern as a real time-ordered run — it is
/// the *locality-matched* non-queue baseline. The LIFO stack's
/// depth-first chain walk keeps one chain's protocol state artificially
/// hot, so its time bounds the non-queue cost from below and overstates
/// the queue share. Reporting both brackets the true share.
pub fn build_sim_fifo(n: usize, seed: u64, ttl: u32) -> Simulator<Flood> {
    SimulatorBuilder::new(n, seed)
        .latency(bench_latency())
        .loss(LossModel::none())
        .fifo_queue_for_ablation()
        .build(make_flood(n, ttl))
}

/// Runs one measurement: builds the simulator (untimed), drains it to
/// completion (timed) and returns `(events processed, seconds)`.
pub fn measure(n: usize, seed: u64, target_events: u64, core: Core) -> (u64, f64) {
    let ttl = ttl_for(n, target_events);
    let mut sim = build_sim(n, seed, ttl, core);
    let start = Instant::now();
    let processed = sim.run_to_completion().expect("contract holds");
    (processed, start.elapsed().as_secs_f64())
}

/// [`measure`] on the flat core with batched dispatch disabled.
pub fn measure_single_pop(n: usize, seed: u64, target_events: u64) -> (u64, f64) {
    let ttl = ttl_for(n, target_events);
    let mut sim = build_sim_single_pop(n, seed, ttl);
    let start = Instant::now();
    let processed = sim.run_to_completion().expect("contract holds");
    (processed, start.elapsed().as_secs_f64())
}

/// [`measure`] on the LIFO ablation stack (see [`build_sim_lifo`]): the
/// non-queue pipeline cost at the real event count.
pub fn measure_lifo(n: usize, seed: u64, target_events: u64) -> (u64, f64) {
    let ttl = ttl_for(n, target_events);
    let mut sim = build_sim_lifo(n, seed, ttl);
    let start = Instant::now();
    let processed = sim.run_to_completion().expect("contract holds");
    (processed, start.elapsed().as_secs_f64())
}

/// [`measure`] on the FIFO ablation deque (see [`build_sim_fifo`]): the
/// non-queue pipeline cost at the real event count with real-run access
/// locality.
pub fn measure_fifo(n: usize, seed: u64, target_events: u64) -> (u64, f64) {
    let ttl = ttl_for(n, target_events);
    let mut sim = build_sim_fifo(n, seed, ttl);
    let start = Instant::now();
    let processed = sim.run_to_completion().expect("contract holds");
    (processed, start.elapsed().as_secs_f64())
}

/// Drains `sim` and condenses every observable the differential tests pin —
/// processed-event count, the full [`NetStats`](heap_simnet::NetStats)
/// rendering and the final clock — into `(processed, fingerprint)`. The CI
/// smoke compares this across dispatch modes so a batch-path divergence
/// fails the bench run itself, not just the unit suites.
pub fn fingerprint(sim: &mut Simulator<Flood>) -> (u64, u64) {
    use std::hash::{Hash, Hasher};
    let processed = sim.run_to_completion().expect("contract holds");
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    format!("{:?}", sim.stats()).hash(&mut hasher);
    sim.now().as_micros().hash(&mut hasher);
    (processed, hasher.finish())
}

/// [`build_sim`]'s sharded counterpart: the same workload on the PR 5
/// sharded core with `shards` contiguous partitions. Bit-identical to every
/// other core (the differential tests assert it; `bench-json` re-checks the
/// event counts per run).
pub fn build_sim_sharded(n: usize, seed: u64, ttl: u32, shards: usize) -> Simulator<Flood> {
    SimulatorBuilder::new(n, seed)
        .latency(bench_latency())
        .loss(LossModel::none())
        .sharded(shards)
        .shard_policy(ShardPolicy::Contiguous)
        .build(make_flood(n, ttl))
}

/// One sharded measurement: `(events processed, seconds)` for `shards`
/// shards, stepped sequentially (`threaded == false`, the cache-locality
/// mode) or one shard per core on scoped threads.
pub fn measure_sharded(
    n: usize,
    seed: u64,
    target_events: u64,
    shards: usize,
    threaded: bool,
) -> (u64, f64) {
    let ttl = ttl_for(n, target_events);
    let mut sim = build_sim_sharded(n, seed, ttl, shards);
    let start = Instant::now();
    let processed = if threaded {
        sim.run_to_completion_threaded().expect("contract holds")
    } else {
        sim.run_to_completion().expect("contract holds")
    };
    (processed, start.elapsed().as_secs_f64())
}

// --- Scale campaign -------------------------------------------------------
//
// The throughput benches above keep ~128 standing events per node so the
// queue works hard; at 10⁶ nodes that shape would process billions of
// events. The scale campaign asks a different question — how do events/s
// and bytes/node hold up as n grows by three orders of magnitude? — so it
// runs the same Flood protocol with a far lighter per-node load and a fixed
// TTL (total events scale linearly with n; the per-size numbers compare
// event *rates*, not identical streams).

/// Message chains seeded per receiver in a scale-campaign run.
pub const SCALE_CHAINS_PER_NODE: usize = 4;

/// Standing far timers per node in a scale-campaign run.
pub const SCALE_FAR_TIMERS_PER_NODE: usize = 4;

/// Periodic timer rounds per node in a scale-campaign run.
pub const SCALE_TIMER_ROUNDS: u32 = 2;

/// Chain TTL of a scale-campaign run: with [`SCALE_CHAINS_PER_NODE`] this
/// yields ~35 events per node, so 10⁶ nodes process ~3.5·10⁷ events.
pub const SCALE_TTL: u32 = 6;

/// One scale-campaign measurement.
pub struct ScaleMeasurement {
    /// Events processed.
    pub events: u64,
    /// Wall-clock seconds of the run (building the simulator is untimed).
    pub seconds: f64,
    /// The simulator's capacity-based footprint, sampled right after
    /// construction — when the seeded chains put the standing event
    /// population at its densest (see `Simulator::memory_footprint`).
    pub footprint: heap_simnet::MemoryFootprint,
}

/// Builds the light scale-campaign simulator (flat core).
pub fn build_sim_scale(n: usize, seed: u64) -> Simulator<Flood> {
    SimulatorBuilder::new(n, seed)
        .latency(bench_latency())
        .loss(LossModel::none())
        .build(move |id| Flood {
            n: n as u32,
            ttl: SCALE_TTL,
            timer_rounds: SCALE_TIMER_ROUNDS,
            chains: SCALE_CHAINS_PER_NODE as u32,
            far_timers: SCALE_FAR_TIMERS_PER_NODE as u32,
            far_budget: SCALE_FAR_TIMERS_PER_NODE as u32 * FAR_TIMER_REARMS,
            target: id.as_u32(),
            stride: ((2 * id.as_u32() + 3) % n as u32).max(1),
        })
}

/// Runs one scale-campaign measurement at `n` nodes: builds the light
/// Flood workload (untimed), samples the capacity-based memory footprint,
/// then drains the run (timed).
pub fn measure_scale(n: usize, seed: u64) -> ScaleMeasurement {
    let mut sim = build_sim_scale(n, seed);
    let footprint = sim.memory_footprint();
    let start = Instant::now();
    let events = sim.run_to_completion().expect("contract holds");
    ScaleMeasurement {
        events,
        seconds: start.elapsed().as_secs_f64(),
        footprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_core_independent() {
        // The exact same events must be processed by all scheduling cores.
        let (flat_events, _) = measure(60, 5, 50_000, Core::Flat);
        let (pr3_events, _) = measure(60, 5, 50_000, Core::Pr3);
        let (seed_events, _) = measure(60, 5, 50_000, Core::Seed);
        assert_eq!(flat_events, pr3_events);
        assert_eq!(flat_events, seed_events);
        assert!(flat_events > 40_000);
    }

    #[test]
    fn sharded_workload_processes_the_identical_event_stream() {
        let (flat_events, _) = measure(60, 5, 50_000, Core::Flat);
        for shards in [1usize, 2, 4] {
            let (seq_events, _) = measure_sharded(60, 5, 50_000, shards, false);
            assert_eq!(flat_events, seq_events, "{shards}-shard sequential");
            let (thr_events, _) = measure_sharded(60, 5, 50_000, shards, true);
            assert_eq!(flat_events, thr_events, "{shards}-shard threaded");
        }
    }

    #[test]
    fn lifo_ablation_processes_the_identical_event_count() {
        // The Flood event population is order-invariant, so the unordered
        // LIFO stack must pop exactly the events the real queue orders.
        let (flat_events, _) = measure(60, 5, 50_000, Core::Flat);
        let (lifo_events, _) = measure_lifo(60, 5, 50_000);
        assert_eq!(flat_events, lifo_events);
    }

    #[test]
    fn fifo_ablation_processes_the_identical_event_count() {
        let (flat_events, _) = measure(60, 5, 50_000, Core::Flat);
        let (fifo_events, _) = measure_fifo(60, 5, 50_000);
        assert_eq!(flat_events, fifo_events);
    }

    #[test]
    fn dispatch_modes_share_one_fingerprint() {
        let ttl = ttl_for(60, 50_000);
        let batched = fingerprint(&mut build_sim(60, 5, ttl, Core::Flat));
        let single = fingerprint(&mut build_sim_single_pop(60, 5, ttl));
        assert_eq!(batched, single);
    }

    #[test]
    fn scale_measurement_reports_events_and_footprint() {
        let m = measure_scale(200, 7);
        // ~35 events per node under the light load.
        assert!(m.events > 20 * 200, "only {} events", m.events);
        assert_eq!(m.footprint.n_nodes(), 200);
        assert!(m.footprint.bytes_per_node() > 0.0);
        // The scale shape must stay light: well under the ~128 standing
        // events per node of the throughput benches.
        let per_node = m.events / 200;
        assert!(per_node < 100, "{per_node} events/node is not light");
    }

    #[test]
    fn ttl_scales_inversely_with_nodes_down_to_the_floor() {
        assert!(ttl_for(100, 1_000_000) > ttl_for(1000, 1_000_000));
        // The floor keeps chains dominant over the n-proportional timers.
        assert_eq!(ttl_for(100, 0), 40);
        assert_eq!(ttl_for(5000, 2_000_000), 40);
    }
}
