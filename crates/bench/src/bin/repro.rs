//! `repro` — regenerates every figure and table of the HEAP paper.
//!
//! ```text
//! Usage: repro [--scale test|default|paper] [--seed N] [--smoke]
//!              [--nodes N] [--windows N]
//!              [--metrics-out PATH] [EXPERIMENT ...]
//!
//! EXPERIMENT is one or more of:
//!   table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 table2 table3
//!   partialview health adversarial
//! or `all` (the default). `--smoke` shrinks whatever scale is selected to a
//! fast CI smoke configuration (24 nodes, 2 windows).
//!
//! `scale` (never part of `all`) runs the scale campaign's fig1-style
//! dissemination figure at a large population in compact result detail —
//! see `docs/SCALE.md`. It defaults to 100 000 nodes / 2 windows;
//! `--nodes`/`--windows` override, and `--smoke` selects the CI smoke shape
//! (100 000 nodes, 1 window).
//! ```
//!
//! Output is plain text: one block per figure with its tables and/or
//! gnuplot-friendly series. `EXPERIMENTS.md` records a run of this binary and
//! compares the measured shapes against the paper.
//!
//! `--metrics-out PATH` additionally writes a Prometheus-style text
//! exposition of the six baseline runs (see `docs/METRICS.md`) to `PATH`,
//! prefixed with one `# generated-at <unix seconds>` comment line so
//! byte-comparisons can strip the only non-deterministic part.

use heap_bench::parse_scale;
use heap_workloads::experiments::{
    adversarial, fig10_churn, fig1_unconstrained, fig2_fanout_sweep, fig3_heap_dist1,
    fig4_bandwidth_usage, fig5_6_jitter_free, fig7_jitter_cdf, fig8_lag_by_class, fig9_lag_cdf,
    partial_view, scale_campaign, stream_health, table1_distributions, table2_jittered_delivery,
    table3_jitter_free_nodes, Figure, StandardRuns,
};
use heap_workloads::Scale;
use std::collections::BTreeSet;
use std::time::Instant;

const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table2",
    "table3",
    "partialview",
    "health",
    "adversarial",
];

/// Default population of `repro scale` without `--nodes`: the largest size
/// whose full-detail campaign run stays comfortable on the reference host
/// (see `docs/SCALE.md` for timings and the memory budget).
const SCALE_DEFAULT_NODES: usize = 100_000;

/// Default stream length of `repro scale` without `--windows`.
const SCALE_DEFAULT_WINDOWS: u64 = 2;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale test|default|paper] [--seed N] [--smoke] \
         [--nodes N] [--windows N] [--metrics-out PATH] [EXPERIMENT ...]\n\
         experiments: {} or 'all'\n\
         'scale' (the scale-campaign figure, never part of 'all') honours \
         --nodes/--windows and uses the CI smoke shape under --smoke",
        ALL_EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

/// Reports a command-line error on stderr and exits with status 2.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    eprintln!("run 'repro --help' for usage");
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut metrics_out: Option<String> = None;
    let mut smoke = false;
    let mut scale_nodes: Option<usize> = None;
    let mut scale_windows: Option<u64> = None;
    let mut run_scale_campaign = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| fail("--nodes requires a value"));
                scale_nodes = Some(value.parse().unwrap_or_else(|_| {
                    fail(format!(
                        "invalid --nodes '{value}': expected an unsigned integer"
                    ))
                }));
                continue;
            }
            "--windows" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| fail("--windows requires a value"));
                scale_windows = Some(value.parse().unwrap_or_else(|_| {
                    fail(format!(
                        "invalid --windows '{value}': expected an unsigned integer"
                    ))
                }));
                continue;
            }
            "scale" => {
                run_scale_campaign = true;
                continue;
            }
            _ => {}
        }
        match arg.as_str() {
            "--scale" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| fail("--scale requires a value (test|default|paper)"));
                let parsed = parse_scale(&value).unwrap_or_else(|| {
                    fail(format!(
                        "invalid --scale '{value}': expected test, default or paper"
                    ))
                });
                scale = parsed.with_seed(scale.seed);
            }
            "--seed" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| fail("--seed requires a value"));
                let seed: u64 = value.parse().unwrap_or_else(|_| {
                    fail(format!(
                        "invalid --seed '{value}': expected an unsigned integer"
                    ))
                });
                scale = scale.with_seed(seed);
            }
            "--metrics-out" => {
                metrics_out = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--metrics-out requires a path")),
                );
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            "all" => {
                wanted.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
            }
            other => {
                if ALL_EXPERIMENTS.contains(&other) {
                    wanted.insert(other.to_string());
                } else {
                    fail(format!(
                        "unknown experiment '{other}' (expected one of: {} or 'all')",
                        ALL_EXPERIMENTS.join(" ")
                    ));
                }
            }
        }
    }
    if smoke {
        // A fast CI configuration: whatever scale was selected, shrink the
        // population and the stream while keeping the chosen seed.
        scale = scale.with_nodes(24).with_windows(2);
    }
    if wanted.is_empty() && !run_scale_campaign {
        wanted.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }

    println!(
        "# HEAP reproduction — {} nodes, {} windows, seed {}",
        scale.n_nodes, scale.n_windows, scale.seed
    );

    // The six baseline runs are shared by most figures (and by the metrics
    // export); compute them lazily.
    let needs_baseline = metrics_out.is_some()
        || [
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2", "table3",
        ]
        .iter()
        .any(|e| wanted.contains(*e));
    let baseline = if needs_baseline {
        let start = Instant::now();
        eprintln!("computing the six baseline runs (3 distributions x 2 protocols)...");
        let runs = StandardRuns::compute(scale);
        eprintln!(
            "baseline runs done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
        Some(runs)
    } else {
        None
    };

    let emit = |name: &str, fig: Figure| {
        println!("\n{fig}");
        eprintln!("[{name}] done");
    };

    for name in &wanted {
        let start = Instant::now();
        match name.as_str() {
            "table1" => emit("table1", table1_distributions::run()),
            "fig1" => emit("fig1", fig1_unconstrained::run(scale)),
            "fig2" => emit("fig2", fig2_fanout_sweep::run(scale)),
            "fig3" => emit(
                "fig3",
                fig3_heap_dist1::run(baseline.as_ref().expect("baseline")),
            ),
            "fig4" => emit(
                "fig4",
                fig4_bandwidth_usage::run(baseline.as_ref().expect("baseline")),
            ),
            // Figures 5 and 6 come from the same experiment module.
            "fig5" | "fig6" => {
                if name == "fig5" || !wanted.contains("fig5") {
                    emit(
                        "fig5/6",
                        fig5_6_jitter_free::run(baseline.as_ref().expect("baseline")),
                    );
                }
            }
            "fig7" => emit(
                "fig7",
                fig7_jitter_cdf::run(baseline.as_ref().expect("baseline")),
            ),
            "fig8" => emit(
                "fig8",
                fig8_lag_by_class::run(baseline.as_ref().expect("baseline")),
            ),
            "fig9" => emit(
                "fig9",
                fig9_lag_cdf::run(baseline.as_ref().expect("baseline")),
            ),
            "fig10" => emit("fig10", fig10_churn::run(scale)),
            "health" => emit("health", stream_health::run(scale)),
            "adversarial" => emit("adversarial", adversarial::run(scale)),
            "partialview" => {
                emit("partialview", partial_view::run(scale));
                emit("partialview-churn", partial_view::run_continuous(scale));
            }
            "table2" => emit(
                "table2",
                table2_jittered_delivery::run(baseline.as_ref().expect("baseline")),
            ),
            "table3" => emit(
                "table3",
                table3_jitter_free_nodes::run(baseline.as_ref().expect("baseline")),
            ),
            _ => unreachable!("validated above"),
        }
        eprintln!("[{name}] took {:.1}s", start.elapsed().as_secs_f64());
    }

    if run_scale_campaign {
        // The campaign sizes itself independently of `--scale`: `--smoke`
        // selects the CI smoke shape, `--nodes`/`--windows` override either
        // default. Only the seed is shared with the other experiments.
        let n = scale_nodes.unwrap_or(if smoke {
            scale_campaign::SMOKE_NODES
        } else {
            SCALE_DEFAULT_NODES
        });
        let windows = scale_windows.unwrap_or(if smoke {
            scale_campaign::SMOKE_WINDOWS
        } else {
            SCALE_DEFAULT_WINDOWS
        });
        let start = Instant::now();
        emit("scale", scale_campaign::run(n, windows, scale.seed));
        eprintln!("[scale] took {:.1}s", start.elapsed().as_secs_f64());
    }

    if let Some(path) = metrics_out {
        let generated_at = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let text = format!(
            "# generated-at {generated_at}\n{}",
            stream_health::baseline_exposition(baseline.as_ref().expect("baseline"))
        );
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write metrics to {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[metrics] exposition written to {path}");
    }
}
