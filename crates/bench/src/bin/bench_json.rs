//! `bench-json` — records the scheduling-core throughput, the batched
//! dispatch comparison, the PR 5 shard-count sweep, the million-node scale
//! campaign and the figure-regeneration wall-clock as a machine-readable
//! JSON file.
//!
//! ```text
//! Usage: bench-json [--scale test|default|paper] [--out PATH]
//! ```
//!
//! The emitted file (default `BENCH_7.json`, checked in at the repo root) is
//! the benchmark trajectory of the scale-campaign PR: simulator events/s
//! at 100 / 271 / 1000 / 5000 nodes for the PR 4 flat core (now stepping
//! whole calendar buckets at a time), the PR 3 calendar core and the
//! pre-PR-3 `BinaryHeap` seed core (same binary, interleaved repetitions,
//! identical event streams — asserted); a batch-dispatch section comparing
//! batched against single-pop dispatch at 1000 / 10000 nodes with a
//! queue-share ablation; a shard-count sweep (1 / 2 / 4 shards, sequential
//! and scoped-thread stepping) against the flat core at 1000 / 5000 / 10000
//! nodes; a scale campaign sweeping the light flood workload across
//! 10³–10⁶ nodes and recording events/s plus peak bytes/node (both the
//! capacity-based [`heap_simnet::MemoryFootprint`] estimate and the
//! counting-allocator ground truth); host metadata (core count, GF(256)
//! kernel, CPU model) so cross-PR numbers carry the noisy-host caveat; a
//! sharded-scenario fingerprint check; the parallel vs sequential
//! figure-regeneration wall-clock; and a bit-identity check of the parallel
//! per-figure sweeps (threaded and work-stealing paths).
//!
//! Every section carries a computed `analysis` field: the prose is derived
//! from the numbers of the run that produced the file, so regenerating the
//! file can never leave a stale hand-written claim behind.

use heap_bench::simloop::Core;
use heap_bench::{parse_scale, simloop};
use heap_workloads::experiments::StandardRuns;
use heap_workloads::{
    run_scenario, run_scenarios_stealing, run_scenarios_threaded, BandwidthDistribution, ChurnSpec,
    ProtocolChoice, Scale, Scenario,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting wrapper around the system allocator: tracks live heap bytes and
/// a resettable high-water mark, so the scale section can report the
/// allocator-ground-truth peak next to the capacity-based
/// [`heap_simnet::MemoryFootprint`] estimate. Same pattern as the
/// `memory_guard` integration test in `heap-workloads`.
struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            on_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[global_allocator]
static COUNTER: PeakAlloc = PeakAlloc;

/// Node counts the three-core simulator loop is measured at.
const SIM_SIZES: [usize; 4] = [100, 271, 1000, 5000];

/// Node counts of the shard-count sweep (the ≥10⁴-node territory the
/// sharding PR targets).
const SHARD_SIZES: [usize; 3] = [1000, 5000, 10_000];

/// Shard counts swept per size.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Node counts of the scale campaign (the million-node territory this PR
/// targets; the light flood workload keeps total events linear in n).
const SCALE_CAMPAIGN_SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Repetitions per scale-campaign size; best wall-clock wins.
const SCALE_CAMPAIGN_REPS: usize = 2;

/// Events per simulator-loop measurement (full-fidelity scales).
const SIM_TARGET_EVENTS: u64 = 2_000_000;

/// Interleaved repetitions per (size, core) pair; best wall-clock wins.
const SIM_REPS: usize = 5;

/// Repetitions per shard-sweep configuration; best wall-clock wins.
const SHARD_REPS: usize = 3;

/// The simulator-loop measurement plan: full fidelity for the checked-in
/// `BENCH_5.json` scales, a fast shallow pass at `--scale test` so CI's
/// smoke step stays a smoke step.
fn sim_plan(scale_name: &str) -> (&'static [usize], u64, usize) {
    if scale_name == "test" {
        (&SIM_SIZES[..2], 200_000, 2)
    } else {
        (&SIM_SIZES[..], SIM_TARGET_EVENTS, SIM_REPS)
    }
}

/// The shard-sweep plan, analogous to [`sim_plan`].
fn shard_plan(scale_name: &str) -> (&'static [usize], u64, usize) {
    if scale_name == "test" {
        (&SHARD_SIZES[..1], 200_000, 1)
    } else {
        (&SHARD_SIZES[..], SIM_TARGET_EVENTS, SHARD_REPS)
    }
}

/// The scale-campaign plan, analogous to [`sim_plan`]: the full 10³–10⁶
/// sweep for the checked-in file, the two smallest sizes at `--scale test`.
fn scale_campaign_plan(scale_name: &str) -> (&'static [usize], usize) {
    if scale_name == "test" {
        (&SCALE_CAMPAIGN_SIZES[..2], 1)
    } else {
        (&SCALE_CAMPAIGN_SIZES[..], SCALE_CAMPAIGN_REPS)
    }
}

fn usage() -> ! {
    eprintln!("usage: bench-json [--scale test|default|paper] [--out PATH]");
    std::process::exit(2);
}

/// The fig1/fig2/fig10-style scenario set used for the sweep identity check
/// (kept small so the check stays affordable at any `--scale`).
fn sweep_scenarios() -> Vec<Scenario> {
    let scale = Scale::test();
    let churn = ChurnSpec::Catastrophic {
        fraction: 0.5,
        at_secs: 3,
        detection_secs: 10,
    };
    vec![
        Scenario::new(
            "sweep/fig1/unconstrained",
            scale,
            BandwidthDistribution::unconstrained(),
            ProtocolChoice::Standard { fanout: 7.0 },
        ),
        Scenario::new(
            "sweep/fig2/ms-691-f7",
            scale,
            BandwidthDistribution::ms_691(),
            ProtocolChoice::Standard { fanout: 7.0 },
        ),
        Scenario::new(
            "sweep/fig2/uniform-691-f15",
            scale,
            BandwidthDistribution::uniform_691(),
            ProtocolChoice::Standard { fanout: 15.0 },
        ),
        Scenario::new(
            "sweep/fig10/heap-50",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Heap { fanout: 7.0 },
        )
        .with_churn(churn),
        Scenario::new(
            "sweep/fig10/standard-50",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Standard { fanout: 7.0 },
        )
        .with_churn(churn),
    ]
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut scale_name = "default".to_string();
    let mut out = "BENCH_7.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| usage());
                scale = parse_scale(&value).unwrap_or_else(|| usage());
                scale_name = value;
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    let cores = heap_bench::hostmeta::core_count();
    let gf_kernel = heap_fec::gf256::kernel_name();
    let model = heap_bench::hostmeta::cpu_model();
    eprintln!("bench-json: {cores} cores ({model}), gf kernel {gf_kernel}, scale {scale_name}");

    // --- Simulator loop: batched flat vs single-pop vs PR 3 vs seed -------
    const CORES: [Core; 3] = [Core::Seed, Core::Pr3, Core::Flat];
    let (sim_sizes, sim_events, sim_reps) = sim_plan(&scale_name);
    let mut sim_json = String::new();
    // (flat/pr3 speedup, batched/single-pop speedup) per size, for the
    // computed section analysis.
    let mut sim_ratios: Vec<(usize, f64, f64)> = Vec::new();
    for (i, &n) in sim_sizes.iter().enumerate() {
        let mut best = [f64::INFINITY; 3];
        let mut events = [0u64; 3];
        let mut sp_best = f64::INFINITY;
        // Interleave the cores so machine-load phases hit all four equally.
        for rep in 0..sim_reps {
            for (slot, &core) in CORES.iter().enumerate() {
                let (e, s) = simloop::measure(n, 7 + rep as u64, sim_events, core);
                events[slot] = e;
                best[slot] = best[slot].min(s);
            }
            let (e_sp, s_sp) = simloop::measure_single_pop(n, 7 + rep as u64, sim_events);
            assert_eq!(e_sp, events[2], "single-pop dispatch changed the stream");
            sp_best = sp_best.min(s_sp);
        }
        assert!(
            events.iter().all(|&e| e == events[0]),
            "all cores must process the identical event stream"
        );
        let eps: Vec<f64> = (0..CORES.len())
            .map(|slot| events[slot] as f64 / best[slot])
            .collect();
        let (seed_eps, pr3_eps, flat_eps) = (eps[0], eps[1], eps[2]);
        let sp_eps = events[2] as f64 / sp_best;
        eprintln!(
            "bench-json: simloop n={n}: seed {:.2} M ev/s, pr3 {:.2} M ev/s, flat {:.2} M ev/s batched / {:.2} M ev/s single-pop ({:.2}x batch, {:.2}x vs pr3)",
            seed_eps / 1e6,
            pr3_eps / 1e6,
            flat_eps / 1e6,
            sp_eps / 1e6,
            flat_eps / sp_eps,
            flat_eps / pr3_eps,
        );
        sim_ratios.push((n, flat_eps / pr3_eps, flat_eps / sp_eps));
        let sep = if i + 1 < sim_sizes.len() { "," } else { "" };
        writeln!(
            sim_json,
            r#"    {{
      "nodes": {n},
      "events": {events},
      "seed_binary_heap_events_per_sec": {seed_eps:.0},
      "pr3_calendar_events_per_sec": {pr3_eps:.0},
      "pr4_flat_single_pop_events_per_sec": {sp_eps:.0},
      "pr4_flat_events_per_sec": {flat_eps:.0},
      "batched_vs_single_pop": {vs_sp:.2},
      "speedup_vs_pr3": {vs_pr3:.2},
      "speedup_vs_seed": {vs_seed:.2}
    }}{sep}"#,
            events = events[0],
            vs_sp = flat_eps / sp_eps,
            vs_pr3 = flat_eps / pr3_eps,
            vs_seed = flat_eps / seed_eps,
        )
        .expect("write to string");
    }
    let sim_analysis = {
        let (lo_n, _, lo) =
            sim_ratios
                .iter()
                .fold((0usize, 0.0f64, f64::INFINITY), |acc, &(n, _, r)| {
                    if r < acc.2 {
                        (n, 0.0, r)
                    } else {
                        acc
                    }
                });
        let (hi_n, _, hi) =
            sim_ratios
                .iter()
                .fold((0usize, 0.0f64, f64::NEG_INFINITY), |acc, &(n, _, r)| {
                    if r > acc.2 {
                        (n, 0.0, r)
                    } else {
                        acc
                    }
                });
        format!(
            "the flat core now steps whole calendar buckets at a time (EventQueue::drain_bucket hands the run loop each bucket as one sorted slice; intruding same-region pushes are merged back by (time, seq), asserted bit-identical); against the same core with batching off the gain on this host ranges {lo:.2}x at {lo_n} nodes to {hi:.2}x at {hi_n} nodes - the batch removes the per-pop cursor walk and tail-copy but pushes (binary-search inserts into sorted buckets) still dominate queue cost, so the per-size gain tracks how many events each drained bucket yields"
        )
    };

    // --- Batch dispatch: batched vs single-pop vs queue ablations --------
    // The acceptance sizes of the batch-pipeline PR, with the checked-in
    // BENCH_5.json flat-core numbers as the cross-PR reference (generated on
    // this host class; the host note's noise caveat applies).
    let batch_sizes: &[(usize, u64)] = if scale_name == "test" {
        &[(1000, 0)]
    } else {
        &[(1000, 11_679_058), (10_000, 6_280_450)]
    };
    let mut batch_json = String::new();
    struct BatchRow {
        n: usize,
        batched_eps: f64,
        sp_eps: f64,
        vs_bench5: f64,
        share_single: f64,
        share_batched: f64,
    }
    let mut batch_rows: Vec<BatchRow> = Vec::new();
    for (i, &(n, bench5_eps)) in batch_sizes.iter().enumerate() {
        let mut batched_best = f64::INFINITY;
        let mut sp_best = f64::INFINITY;
        let mut lifo_best = f64::INFINITY;
        let mut fifo_best = f64::INFINITY;
        let mut events = 0u64;
        for rep in 0..sim_reps {
            let seed = 7 + rep as u64;
            let (e, s) = simloop::measure(n, seed, sim_events, Core::Flat);
            events = e;
            batched_best = batched_best.min(s);
            let (e_sp, s_sp) = simloop::measure_single_pop(n, seed, sim_events);
            assert_eq!(e_sp, events, "single-pop dispatch changed the stream");
            sp_best = sp_best.min(s_sp);
            // Queue-share ablation (BENCH_4's LIFO-substitution methodology,
            // now bracketed by a FIFO twin): the identical workload with the
            // calendar queue swapped for an unordered O(1) container — zero
            // ordering work. The run is not a valid simulation, but the
            // Flood event population is order-invariant (lossless, no
            // cancels, TTL-driven chains, count-budgeted re-arms), so the
            // event count matches exactly (asserted) and the substituted
            // time prices the full non-queue pipeline — dispatch, callbacks,
            // sampling, stats — at the real event count. The LIFO stack
            // walks each chain depth-first (protocol state artificially
            // hot: a lower bound on non-queue cost); the FIFO deque pops in
            // push order, which statistically tracks virtual time, so its
            // locality matches the real run more closely.
            let (e_lifo, s_lifo) = simloop::measure_lifo(n, seed, sim_events);
            assert_eq!(e_lifo, events, "LIFO ablation changed the event count");
            lifo_best = lifo_best.min(s_lifo);
            let (e_fifo, s_fifo) = simloop::measure_fifo(n, seed, sim_events);
            assert_eq!(e_fifo, events, "FIFO ablation changed the event count");
            fifo_best = fifo_best.min(s_fifo);
        }
        let batched_eps = events as f64 / batched_best;
        let sp_eps = events as f64 / sp_best;
        let lifo_eps = events as f64 / lifo_best;
        let fifo_eps = events as f64 / fifo_best;
        // Per-event cost split: everything the substituted run still pays vs
        // the remainder, which is calendar ordering plus the cache traffic
        // of the standing event population. A faster instrument yields a
        // larger share estimate, so the headline share comes from the
        // slower of the two (the higher measured non-queue cost): it is the
        // conservative figure, typically the FIFO deque. Noise that pushes
        // a share negative is clamped at zero.
        let ablation_best = lifo_best.max(fifo_best);
        let queue_share_batched = (1.0 - ablation_best / batched_best).max(0.0);
        let queue_share_single = (1.0 - ablation_best / sp_best).max(0.0);
        eprintln!(
            "bench-json: batch n={n}: batched {:.2} M ev/s, single-pop {:.2} M ev/s, lifo {:.2} M ev/s, fifo {:.2} M ev/s (queue share {:.0}% -> {:.0}%)",
            batched_eps / 1e6,
            sp_eps / 1e6,
            lifo_eps / 1e6,
            fifo_eps / 1e6,
            queue_share_single * 100.0,
            queue_share_batched * 100.0,
        );
        batch_rows.push(BatchRow {
            n,
            batched_eps,
            sp_eps,
            vs_bench5: if bench5_eps > 0 {
                batched_eps / bench5_eps as f64
            } else {
                0.0
            },
            share_single: queue_share_single,
            share_batched: queue_share_batched,
        });
        let bench5_field = if bench5_eps > 0 {
            format!(
                "\n      \"bench5_flat_events_per_sec\": {bench5_eps},\n      \"vs_bench5_flat\": {:.2},",
                batched_eps / bench5_eps as f64
            )
        } else {
            String::new()
        };
        let sep = if i + 1 < batch_sizes.len() { "," } else { "" };
        writeln!(
            batch_json,
            r#"    {{
      "nodes": {n},
      "events": {events},{bench5_field}
      "single_pop_events_per_sec": {sp_eps:.0},
      "batched_events_per_sec": {batched_eps:.0},
      "lifo_queue_events_per_sec": {lifo_eps:.0},
      "fifo_queue_events_per_sec": {fifo_eps:.0},
      "queue_share_of_cost_single_pop": {queue_share_single:.2},
      "queue_share_of_cost_batched": {queue_share_batched:.2}
    }}{sep}"#,
        )
        .expect("write to string");
    }
    let batch_analysis = {
        let mut s = String::from(
            "queue share of per-event cost, bracketed by two queue-substitution ablations on the same workload (event count asserted identical; an unordered O(1) container runs the full non-queue pipeline, so the gap to a real run is the calendar's ordering plus cache cost — the LIFO stack walks chains depth-first with artificially hot protocol state, the FIFO deque pops in push order and so matches the real run's locality; the reported share uses the slower instrument, the conservative figure): ",
        );
        for (i, row) in batch_rows.iter().enumerate() {
            if i > 0 {
                s.push_str("; ");
            }
            write!(
                s,
                "{} nodes: {:.0}% single-pop -> {:.0}% batched ({:.2}x dispatch speedup, {:.2} -> {:.2} M ev/s",
                row.n,
                row.share_single * 100.0,
                row.share_batched * 100.0,
                row.batched_eps / row.sp_eps,
                row.sp_eps / 1e6,
                row.batched_eps / 1e6,
            )
            .expect("write to string");
            if row.vs_bench5 > 0.0 {
                write!(s, ", {:.2}x the BENCH_5 flat core", row.vs_bench5)
                    .expect("write to string");
            }
            s.push(')');
        }
        s.push_str(
            ". The gain over BENCH_5 comes from three queue changes: drain_bucket hands the run loop whole sorted buckets (no per-pop cursor walk), dense buckets order by counting sort over microsecond offsets instead of a comparison sort, and a second-level outer wheel (512 buckets x 0.524 s) absorbs far timers that previously sat in the O(log n) overflow heap - at 10000 nodes roughly half the ~1.3M standing events are 8-24 s timers, and moving them out of the heap is most of the speedup at that size.",
        );
        s
    };

    // --- Shard-count sweep: flat vs 1/2/4 shards, sequential + threaded ---
    let (shard_sizes, shard_events, shard_reps) = shard_plan(&scale_name);
    let mut shard_json = String::new();
    let mut shard_rows: Vec<(usize, usize, f64, f64)> = Vec::new();
    for (i, &n) in shard_sizes.iter().enumerate() {
        // One measurement plan per size: the flat baseline plus every shard
        // count in both execution modes, interleaved across repetitions.
        let mut flat_best = f64::INFINITY;
        let mut flat_events = 0u64;
        let mut seq_best = [f64::INFINITY; SHARD_COUNTS.len()];
        let mut thr_best = [f64::INFINITY; SHARD_COUNTS.len()];
        for rep in 0..shard_reps {
            let seed = 7 + rep as u64;
            let (e, s) = simloop::measure(n, seed, shard_events, Core::Flat);
            flat_events = e;
            flat_best = flat_best.min(s);
            for (slot, &shards) in SHARD_COUNTS.iter().enumerate() {
                let (e_seq, s_seq) = simloop::measure_sharded(n, seed, shard_events, shards, false);
                assert_eq!(
                    e_seq, flat_events,
                    "sharded stream diverged ({shards} shards)"
                );
                seq_best[slot] = seq_best[slot].min(s_seq);
                let (e_thr, s_thr) = simloop::measure_sharded(n, seed, shard_events, shards, true);
                assert_eq!(
                    e_thr, flat_events,
                    "threaded sharded stream diverged ({shards} shards)"
                );
                thr_best[slot] = thr_best[slot].min(s_thr);
            }
        }
        let flat_eps = flat_events as f64 / flat_best;
        let mut per_count = String::new();
        for (slot, &shards) in SHARD_COUNTS.iter().enumerate() {
            let seq_eps = flat_events as f64 / seq_best[slot];
            let thr_eps = flat_events as f64 / thr_best[slot];
            eprintln!(
                "bench-json: shards n={n} x{shards}: seq {:.2} M ev/s ({:.2}x flat), threaded {:.2} M ev/s ({:.2}x flat)",
                seq_eps / 1e6,
                seq_eps / flat_eps,
                thr_eps / 1e6,
                thr_eps / flat_eps,
            );
            shard_rows.push((n, shards, seq_eps / flat_eps, thr_eps / flat_eps));
            let sep = if slot + 1 < SHARD_COUNTS.len() {
                ","
            } else {
                ""
            };
            writeln!(
                per_count,
                r#"        {{
          "shards": {shards},
          "sequential_events_per_sec": {seq_eps:.0},
          "sequential_vs_flat": {seq_ratio:.2},
          "threaded_events_per_sec": {thr_eps:.0},
          "threaded_vs_flat": {thr_ratio:.2}
        }}{sep}"#,
                seq_ratio = seq_eps / flat_eps,
                thr_ratio = thr_eps / flat_eps,
            )
            .expect("write to string");
        }
        let sep = if i + 1 < shard_sizes.len() { "," } else { "" };
        writeln!(
            shard_json,
            r#"    {{
      "nodes": {n},
      "events": {flat_events},
      "flat_events_per_sec": {flat_eps:.0},
      "per_shard_count": [
{per_count}      ]
    }}{sep}"#,
        )
        .expect("write to string");
    }
    type ShardRow = (usize, usize, f64, f64);
    let shard_analysis = {
        let ratios = |pred: &dyn Fn(&ShardRow) -> bool, thr: bool| {
            let sel: Vec<f64> = shard_rows
                .iter()
                .filter(|r| pred(r))
                .map(|r| if thr { r.3 } else { r.2 })
                .collect();
            let lo = sel.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = sel.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (lo, hi)
        };
        let (one_lo, one_hi) = ratios(&|r| r.1 == 1, false);
        let (multi_lo, multi_hi) = ratios(&|r| r.1 > 1, false);
        let (thr_lo, thr_hi) = ratios(&|_| true, true);
        format!(
            "sequential vs threaded shard stepping on this {cores}-core host, all shard counts reusing the per-shard bucket-drain batch path: a single shard runs {one_lo:.2}-{one_hi:.2}x the flat core (the exchange applies every push in sorted (time, seq) batches); {multi}-shard stepping lands at {multi_lo:.2}-{multi_hi:.2}x with no spare core to hide the per-bucket multi-queue stepping and exchange routing; scoped-thread stepping spans {thr_lo:.2}-{thr_hi:.2}x - with fewer cores than shards the barrier waits serialise to pure overhead, so the threaded numbers are a correctness demonstration (bit-identical, asserted per run) and shard-per-core speedup remains a multi-core measurement (see ROADMAP)",
            multi = "2/4",
        )
    };

    // --- Scale campaign: 10^3 .. 10^6 nodes, events/s + peak bytes/node ----
    let (campaign_sizes, campaign_reps) = scale_campaign_plan(&scale_name);
    let mut campaign_json = String::new();
    // (n, events/s, footprint bytes/node, allocator peak bytes/node).
    let mut campaign_rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    for (i, &n) in campaign_sizes.iter().enumerate() {
        let mut best_seconds = f64::INFINITY;
        let mut events = 0u64;
        let mut footprint = heap_simnet::MemoryFootprint::default();
        let mut alloc_peak = 0u64;
        for rep in 0..campaign_reps {
            // Reset the allocator high-water mark so the peak measures this
            // size's build + run on top of whatever the binary already holds.
            let baseline = LIVE.load(Ordering::Relaxed);
            PEAK.store(baseline, Ordering::Relaxed);
            let m = simloop::measure_scale(n, 7 + rep as u64);
            let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
            best_seconds = best_seconds.min(m.seconds);
            events = m.events;
            footprint = m.footprint;
            alloc_peak = alloc_peak.max(peak);
        }
        let eps = events as f64 / best_seconds;
        let fp_per_node = footprint.bytes_per_node();
        let peak_per_node = alloc_peak as f64 / n as f64;
        eprintln!(
            "bench-json: scale n={n}: {events} events, {:.2} M ev/s, footprint {fp_per_node:.0} B/node, alloc peak {peak_per_node:.0} B/node",
            eps / 1e6,
        );
        campaign_rows.push((n, eps, fp_per_node, peak_per_node));
        let mut components = String::new();
        for (j, (label, bytes)) in footprint.components().iter().enumerate() {
            let sep = if j + 1 < footprint.components().len() {
                ","
            } else {
                ""
            };
            writeln!(components, r#"        "{label}": {bytes}{sep}"#).expect("write to string");
        }
        let sep = if i + 1 < campaign_sizes.len() {
            ","
        } else {
            ""
        };
        writeln!(
            campaign_json,
            r#"    {{
      "nodes": {n},
      "events": {events},
      "events_per_sec": {eps:.0},
      "footprint_bytes_per_node": {fp_per_node:.0},
      "alloc_peak_bytes_per_node": {peak_per_node:.0},
      "footprint_components_bytes": {{
{components}      }}
    }}{sep}"#,
        )
        .expect("write to string");
    }
    let campaign_analysis = {
        let (n_first, eps_first, _, _) = campaign_rows[0];
        let &(n_last, eps_last, fp_last, peak_last) = campaign_rows.last().expect("sizes");
        format!(
            "the light flood workload ({chains} chains + {far} far timers per node, TTL {ttl}) keeps total events linear in n, so per-size numbers compare event rates, not identical streams; the event rate declines to {retention:.0}% of the {n_first}-node rate at {n_last} nodes ({eps_first:.2} -> {eps_last:.2} M ev/s) as the standing event population outgrows cache, while per-node memory stays flat ({fp_last:.0} B/node capacity-based footprint, {peak_last:.0} B/node allocator peak at {n_last} nodes, {total_gb:.2} GB total peak) - flat bytes/node, not flat events/s, is what lets the campaign reach 10^6 nodes on one host; the footprint components show where the standing bytes live (net stats columns, pending events, timer slots dominate)",
            chains = simloop::SCALE_CHAINS_PER_NODE,
            far = simloop::SCALE_FAR_TIMERS_PER_NODE,
            ttl = simloop::SCALE_TTL,
            retention = 100.0 * eps_last / eps_first,
            eps_first = eps_first / 1e6,
            eps_last = eps_last / 1e6,
            total_gb = peak_last * n_last as f64 / 1e9,
        )
    };

    // --- Sharded scenario fingerprint check --------------------------------
    eprintln!("bench-json: checking sharded-scenario bit-identity...");
    let scenario = Scenario::new(
        "shard-check/heap-ms691",
        Scale::test(),
        BandwidthDistribution::ms_691(),
        ProtocolChoice::Heap { fanout: 7.0 },
    );
    let single_fp = run_scenario(&scenario).fingerprint();
    let sharded_fp = run_scenario(
        &scenario
            .clone()
            .with_sharding(heap_workloads::ShardingChoice::sharded(4)),
    )
    .fingerprint();
    let threaded_fp =
        run_scenario(&scenario.with_sharding(heap_workloads::ShardingChoice::sharded_threaded(4)))
            .fingerprint();
    let sharded_scenarios_identical = single_fp == sharded_fp && single_fp == threaded_fp;
    assert!(
        sharded_scenarios_identical,
        "sharded scenario diverged from the single-core engine"
    );

    // --- Sweep bit-identity: parallel vs sequential ------------------------
    eprintln!("bench-json: checking parallel sweep bit-identity...");
    let scenarios = sweep_scenarios();
    // The always-threaded path, so the check is meaningful on 1-core hosts.
    let parallel: Vec<u64> = run_scenarios_threaded(&scenarios)
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    let sequential: Vec<u64> = scenarios
        .iter()
        .map(|s| run_scenario(s).fingerprint())
        .collect();
    // The work-stealing runner (thread-per-worker deque over the scenario
    // list), forced past one worker so real steals occur.
    let stealing: Vec<u64> = run_scenarios_stealing(&scenarios, 3)
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    let sweeps_identical = parallel == sequential && stealing == sequential;
    assert!(
        parallel == sequential,
        "parallel sweep diverged from the sequential path"
    );
    assert!(
        stealing == sequential,
        "work-stealing sweep diverged from the sequential path"
    );

    // --- Figure regeneration (six baseline runs) ---------------------------
    eprintln!("bench-json: figure regeneration (adaptive parallel) at scale {scale_name}...");
    let start = Instant::now();
    let parallel_runs = StandardRuns::compute(scale);
    let regen_parallel = start.elapsed().as_secs_f64();
    eprintln!("bench-json: adaptive {regen_parallel:.1}s; sequential reference...");
    let start = Instant::now();
    let sequential_runs = StandardRuns::compute_sequential(scale);
    let regen_sequential = start.elapsed().as_secs_f64();
    eprintln!("bench-json: sequential {regen_sequential:.1}s");
    assert_eq!(
        parallel_runs.iter().count(),
        sequential_runs.iter().count(),
        "both pipelines ran the same six scenarios"
    );

    let regen_speedup = regen_sequential / regen_parallel;
    let regen_analysis = format!(
        "adaptive regeneration picked the {mode} path on this {cores}-core host and ran {regen_parallel:.1}s vs {regen_sequential:.1}s sequential ({regen_speedup:.2}x); the runner now schedules scenarios over a work-stealing deque when cores allow (HEAP_RUNNER=steal forces it), bit-identical to the sequential sweep (asserted above)",
        mode = if cores > 1 { "parallel" } else { "inline" },
    );
    let json = format!(
        r#"{{
  "pr": 9,
  "generated_by": "cargo run --release -p heap-bench --bin bench-json -- --scale {scale_name}",
  "host": {{
    "cores": {cores},
    "cpu_model": "{model}",
    "gf256_kernel": "{gf_kernel}",
    "note": "shared container, +/-15-20% run-to-run noise; compare numbers within this file, not across BENCH_*.json generated on different days"
  }},
  "simulator_loop": {{
    "workload": "stride-walk flood, {chains} in-flight msgs/node + {far} standing far timers/node, uniform 2-264 ms latency",
    "baselines": "both predecessor cores in the same binary: pr3_calendar (calendar queue, pooled deferred command buffer, per-event dispatch) and seed_binary_heap (BinaryHeap queue, per-callback allocation, seed-shim uniform draws); pr4_flat_single_pop is the PR 8 flat core with batched bucket-drain dispatch switched off",
    "per_size": [
{sim_json}    ],
    "analysis": "{sim_analysis}"
  }},
  "batch_dispatch": {{
    "workload": "same stride-walk flood on the flat core: batched bucket-drain dispatch vs single-pop dispatch vs the LIFO- and FIFO-queue substitution ablations, identical event counts asserted per run",
    "per_size": [
{batch_json}    ],
    "analysis": "{batch_analysis}"
  }},
  "shard_sweep": {{
    "workload": "same stride-walk flood on the PR 5 sharded core (contiguous partition), all shard counts processing the event stream bit-identically to the flat core (asserted per run)",
    "per_size": [
{shard_json}    ],
    "analysis": "{shard_analysis}"
  }},
  "scale_campaign": {{
    "workload": "light stride-walk flood ({scale_chains} in-flight msgs/node + {scale_far} standing far timers/node, TTL {scale_ttl}, uniform 2-264 ms latency) on the flat core; total events linear in n so the sweep measures rate and memory, not a fixed event budget",
    "per_size": [
{campaign_json}    ],
    "analysis": "{campaign_analysis}"
  }},
  "sharded_scenarios_bit_identical": {sharded_scenarios_identical},
  "figure_regen": {{
    "scale": "{scale_name}",
    "note": "StandardRuns::compute is adaptive: thread-per-scenario on multicore hosts, inline on single-core hosts (results bit-identical either way)",
    "adaptive_parallel_s": {regen_parallel:.2},
    "sequential_s": {regen_sequential:.2},
    "speedup": {regen_speedup:.2},
    "analysis": "{regen_analysis}"
  }},
  "sweeps_bit_identical": {sweeps_identical}
}}
"#,
        chains = simloop::CHAINS_PER_NODE,
        far = simloop::FAR_TIMERS_PER_NODE,
        scale_chains = simloop::SCALE_CHAINS_PER_NODE,
        scale_far = simloop::SCALE_FAR_TIMERS_PER_NODE,
        scale_ttl = simloop::SCALE_TTL,
    );
    std::fs::write(&out, &json).expect("write bench json");
    eprintln!("bench-json: wrote {out}");
    print!("{json}");
}
