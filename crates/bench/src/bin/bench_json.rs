//! `bench-json` — records the scheduling-core throughput and the
//! figure-regeneration wall-clock as a machine-readable JSON file.
//!
//! ```text
//! Usage: bench-json [--scale test|default|paper] [--out PATH]
//! ```
//!
//! The emitted file (default `BENCH_4.json`, checked in at the repo root) is
//! the benchmark trajectory of the hot-path flattening PR: simulator
//! events/s at 100 / 271 / 1000 / 5000 nodes for the PR 4 flat core, the
//! PR 3 calendar core *and* the pre-PR-3 `BinaryHeap` seed core, measured in
//! the same run (same binary, interleaved repetitions, identical event
//! streams — asserted), the timer-table footprint after the run, the
//! parallel vs sequential figure-regeneration wall-clock, and a bit-identity
//! check of the parallel per-figure sweeps against their sequential paths.

use heap_bench::simloop::Core;
use heap_bench::{parse_scale, simloop};
use heap_workloads::experiments::StandardRuns;
use heap_workloads::{
    run_scenario, run_scenarios_threaded, BandwidthDistribution, ChurnSpec, ProtocolChoice, Scale,
    Scenario,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Node counts the simulator loop is measured at.
const SIM_SIZES: [usize; 4] = [100, 271, 1000, 5000];

/// Events per simulator-loop measurement (full-fidelity scales).
const SIM_TARGET_EVENTS: u64 = 2_000_000;

/// Interleaved repetitions per (size, core) pair; best wall-clock wins.
const SIM_REPS: usize = 5;

/// The simulator-loop measurement plan: full fidelity for the checked-in
/// `BENCH_3.json` scales, a fast shallow pass at `--scale test` so CI's
/// smoke step stays a smoke step.
fn sim_plan(scale_name: &str) -> (&'static [usize], u64, usize) {
    if scale_name == "test" {
        (&SIM_SIZES[..2], 200_000, 2)
    } else {
        (&SIM_SIZES[..], SIM_TARGET_EVENTS, SIM_REPS)
    }
}

fn usage() -> ! {
    eprintln!("usage: bench-json [--scale test|default|paper] [--out PATH]");
    std::process::exit(2);
}

/// The fig1/fig2/fig10-style scenario set used for the sweep identity check
/// (kept small so the check stays affordable at any `--scale`).
fn sweep_scenarios() -> Vec<Scenario> {
    let scale = Scale::test();
    let churn = ChurnSpec::Catastrophic {
        fraction: 0.5,
        at_secs: 3,
        detection_secs: 10,
    };
    vec![
        Scenario::new(
            "sweep/fig1/unconstrained",
            scale,
            BandwidthDistribution::unconstrained(),
            ProtocolChoice::Standard { fanout: 7.0 },
        ),
        Scenario::new(
            "sweep/fig2/ms-691-f7",
            scale,
            BandwidthDistribution::ms_691(),
            ProtocolChoice::Standard { fanout: 7.0 },
        ),
        Scenario::new(
            "sweep/fig2/uniform-691-f15",
            scale,
            BandwidthDistribution::uniform_691(),
            ProtocolChoice::Standard { fanout: 15.0 },
        ),
        Scenario::new(
            "sweep/fig10/heap-50",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Heap { fanout: 7.0 },
        )
        .with_churn(churn),
        Scenario::new(
            "sweep/fig10/standard-50",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Standard { fanout: 7.0 },
        )
        .with_churn(churn),
    ]
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut scale_name = "default".to_string();
    let mut out = "BENCH_4.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| usage());
                scale = parse_scale(&value).unwrap_or_else(|| usage());
                scale_name = value;
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("bench-json: {cores} cores, scale {scale_name}");

    // --- Simulator loop: PR 4 flat vs PR 3 calendar vs seed BinaryHeap ----
    const CORES: [Core; 3] = [Core::Seed, Core::Pr3, Core::Flat];
    let (sim_sizes, sim_events, sim_reps) = sim_plan(&scale_name);
    let mut sim_json = String::new();
    for (i, &n) in sim_sizes.iter().enumerate() {
        let mut best = [f64::INFINITY; 3];
        let mut events = [0u64; 3];
        // Interleave the cores so machine-load phases hit all three equally.
        for rep in 0..sim_reps {
            for (slot, &core) in CORES.iter().enumerate() {
                let (e, s) = simloop::measure(n, 7 + rep as u64, sim_events, core);
                events[slot] = e;
                best[slot] = best[slot].min(s);
            }
        }
        assert!(
            events.iter().all(|&e| e == events[0]),
            "all cores must process the identical event stream"
        );
        let eps: Vec<f64> = (0..CORES.len())
            .map(|slot| events[slot] as f64 / best[slot])
            .collect();
        let (seed_eps, pr3_eps, flat_eps) = (eps[0], eps[1], eps[2]);
        eprintln!(
            "bench-json: simloop n={n}: seed {:.2} M ev/s, pr3 {:.2} M ev/s, flat {:.2} M ev/s ({:.2}x vs pr3, {:.2}x vs seed)",
            seed_eps / 1e6,
            pr3_eps / 1e6,
            flat_eps / 1e6,
            flat_eps / pr3_eps,
            flat_eps / seed_eps
        );
        let sep = if i + 1 < sim_sizes.len() { "," } else { "" };
        writeln!(
            sim_json,
            r#"    {{
      "nodes": {n},
      "events": {events},
      "seed_binary_heap_events_per_sec": {seed_eps:.0},
      "pr3_calendar_events_per_sec": {pr3_eps:.0},
      "pr4_flat_events_per_sec": {flat_eps:.0},
      "speedup_vs_pr3": {vs_pr3:.2},
      "speedup_vs_seed": {vs_seed:.2}
    }}{sep}"#,
            events = events[0],
            vs_pr3 = flat_eps / pr3_eps,
            vs_seed = flat_eps / seed_eps,
        )
        .expect("write to string");
    }

    // Timer-table footprint: the run arms hundreds of thousands of timers
    // over its lifetime; the slot table must stay bounded by the peak number
    // of concurrently pending timers.
    let (timer_slots, armed_after) = {
        let mut sim = simloop::build_sim(271, 7, simloop::ttl_for(271, sim_events), Core::Flat);
        sim.run_to_completion();
        (sim.timer_slots(), sim.armed_timers())
    };

    // --- Sweep bit-identity: parallel vs sequential ------------------------
    eprintln!("bench-json: checking parallel sweep bit-identity...");
    let scenarios = sweep_scenarios();
    // The always-threaded path, so the check is meaningful on 1-core hosts.
    let parallel: Vec<u64> = run_scenarios_threaded(&scenarios)
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    let sequential: Vec<u64> = scenarios
        .iter()
        .map(|s| run_scenario(s).fingerprint())
        .collect();
    let sweeps_identical = parallel == sequential;
    assert!(
        sweeps_identical,
        "parallel sweep diverged from the sequential path"
    );

    // --- Figure regeneration (six baseline runs) ---------------------------
    eprintln!("bench-json: figure regeneration (adaptive parallel) at scale {scale_name}...");
    let start = Instant::now();
    let parallel_runs = StandardRuns::compute(scale);
    let regen_parallel = start.elapsed().as_secs_f64();
    eprintln!("bench-json: adaptive {regen_parallel:.1}s; sequential reference...");
    let start = Instant::now();
    let sequential_runs = StandardRuns::compute_sequential(scale);
    let regen_sequential = start.elapsed().as_secs_f64();
    eprintln!("bench-json: sequential {regen_sequential:.1}s");
    assert_eq!(
        parallel_runs.iter().count(),
        sequential_runs.iter().count(),
        "both pipelines ran the same six scenarios"
    );

    let json = format!(
        r#"{{
  "pr": 4,
  "generated_by": "cargo run --release -p heap-bench --bin bench-json -- --scale {scale_name}",
  "host": {{
    "cores": {cores}
  }},
  "simulator_loop": {{
    "workload": "stride-walk flood, {chains} in-flight msgs/node + {far} standing far timers/node, uniform 2-264 ms latency",
    "baselines": "both predecessor cores in the same binary: pr3_calendar (calendar queue, pooled deferred command buffer, per-event dispatch) and seed_binary_heap (BinaryHeap queue, per-callback allocation, seed-shim uniform draws)",
    "per_size": [
{sim_json}    ],
    "timer_slots_after_271_node_run": {timer_slots},
    "armed_timers_after_run": {armed_after},
    "analysis": "PR 4 flattened the shared per-event work (eager command dispatch, SoA stats/node state, slim 32-byte queue events, batched same-tick deliveries, cached samplers); ablation on this host (LIFO-queue substitution runs the full non-queue pipeline at ~22 ns/event vs ~75 ns total) shows the remaining cost is calendar-queue ordering and cache traffic over the ~35k-event standing population, so the headroom over the faithful PR 3 core is the 1.1-1.2x recorded here rather than the 1.5x the 55%-shared-work estimate predicted; the next large win is sharding the simulator (see ROADMAP)."
  }},
  "figure_regen": {{
    "scale": "{scale_name}",
    "note": "StandardRuns::compute is adaptive: thread-per-scenario on multicore hosts, inline on single-core hosts (results bit-identical either way)",
    "adaptive_parallel_s": {regen_parallel:.2},
    "sequential_s": {regen_sequential:.2},
    "speedup": {regen_speedup:.2}
  }},
  "sweeps_bit_identical": {sweeps_identical}
}}
"#,
        chains = simloop::CHAINS_PER_NODE,
        far = simloop::FAR_TIMERS_PER_NODE,
        regen_speedup = regen_sequential / regen_parallel,
    );
    std::fs::write(&out, &json).expect("write bench json");
    eprintln!("bench-json: wrote {out}");
    print!("{json}");
}
