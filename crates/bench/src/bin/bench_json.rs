//! `bench-json` — records the substrate throughputs and the
//! figure-regeneration wall-clock as a machine-readable JSON file.
//!
//! ```text
//! Usage: bench-json [--scale test|default|paper] [--out PATH]
//! ```
//!
//! The emitted file (default `BENCH_2.json`, checked in at the repo root) is
//! the benchmark trajectory of the fast-path overhaul PR: it pins the
//! pre-overhaul baselines recorded in `ROADMAP.md` next to freshly measured
//! numbers for the GF(256) kernel, the paper-geometry window codec (warm and
//! cold decode), and the parallel vs sequential six-run figure-regeneration
//! pipeline, so later PRs can diff against it.

use heap_bench::parse_scale;
use heap_fec::{gf256, DecodeWorkspace, WindowDecoder, WindowEncoder, WindowParams};
use heap_workloads::experiments::StandardRuns;
use heap_workloads::Scale;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Substrate throughputs before this PR, as recorded in `ROADMAP.md` for the
/// seed's scalar log/exp kernel and per-window codec rebuild.
const BASELINE_ENCODE_MIB_S: f64 = 93.0;
const BASELINE_DECODE_MIB_S: f64 = 31.0;

fn usage() -> ! {
    eprintln!("usage: bench-json [--scale test|default|paper] [--out PATH]");
    std::process::exit(2);
}

/// Best-of-`reps` wall-clock seconds of one `f()` call (after one warm-up).
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn mib_s(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / secs / (1024.0 * 1024.0)
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut scale_name = "default".to_string();
    let mut out = "BENCH_2.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| usage());
                scale = parse_scale(&value).unwrap_or_else(|| usage());
                scale_name = value;
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "bench-json: {} cores, GF kernel {}, scale {scale_name}",
        cores,
        gf256::kernel_name()
    );

    // --- GF(256) kernel --------------------------------------------------
    let params = WindowParams::PAPER;
    let src: Vec<u8> = (0..params.packet_bytes).map(|i| (i % 251) as u8).collect();
    let mut dst = vec![0u8; params.packet_bytes];
    // Batch enough slices per timed call that Instant's resolution is noise.
    let kernel_batch = 4096;
    let gf_blocked = best_secs(5, || {
        for _ in 0..kernel_batch {
            gf256::mul_add_slice(&mut dst, &src, 0x57);
        }
    }) / kernel_batch as f64;
    let gf_scalar = best_secs(5, || {
        for _ in 0..kernel_batch {
            gf256::mul_add_slice_scalar(&mut dst, &src, 0x57);
        }
    }) / kernel_batch as f64;

    // --- Window codec ----------------------------------------------------
    let encoder = WindowEncoder::new(params).expect("paper geometry is valid");
    let mut rng = SmallRng::seed_from_u64(1);
    let data: Vec<Vec<u8>> = (0..params.data_packets)
        .map(|_| (0..params.packet_bytes).map(|_| rng.gen()).collect())
        .collect();
    let window_bytes = params.data_packets * params.packet_bytes;
    let encode = best_secs(10, || {
        std::hint::black_box(encoder.encode(&data).expect("encode"));
    });

    let packets = encoder.encode(&data).expect("encode");
    let fill = |dec: &mut WindowDecoder| {
        for (i, p) in packets.iter().enumerate() {
            if i >= 9 {
                dec.insert(i, p.clone());
            }
        }
    };
    // Decoder setup (inserting clones) is untimed; only the decode is.
    let mut ws = DecodeWorkspace::new();
    let decode_warm = {
        let mut best = f64::INFINITY;
        for _ in 0..11 {
            let mut dec = WindowDecoder::new(params);
            fill(&mut dec);
            let start = Instant::now();
            dec.decode_with(&mut ws).expect("decodable");
            best = best.min(start.elapsed().as_secs_f64());
            dec.reset(&mut ws);
        }
        best
    };
    let decode_cold = {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let mut dec = WindowDecoder::new(params);
            fill(&mut dec);
            let start = Instant::now();
            std::hint::black_box(dec.decode().expect("decodable"));
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    // --- Figure regeneration (six baseline runs) -------------------------
    eprintln!("bench-json: figure regeneration (parallel) at scale {scale_name}...");
    let start = Instant::now();
    let parallel = StandardRuns::compute(scale);
    let regen_parallel = start.elapsed().as_secs_f64();
    eprintln!("bench-json: parallel {regen_parallel:.1}s; sequential reference...");
    let start = Instant::now();
    let sequential = StandardRuns::compute_sequential(scale);
    let regen_sequential = start.elapsed().as_secs_f64();
    eprintln!("bench-json: sequential {regen_sequential:.1}s");
    assert_eq!(
        parallel.iter().count(),
        sequential.iter().count(),
        "both pipelines ran the same six scenarios"
    );

    let encode_mib = mib_s(window_bytes, encode);
    let decode_warm_mib = mib_s(window_bytes, decode_warm);
    let decode_cold_mib = mib_s(window_bytes, decode_cold);
    let json = format!(
        r#"{{
  "pr": 2,
  "generated_by": "cargo run --release -p heap-bench --bin bench-json -- --scale {scale_name}",
  "host": {{
    "cores": {cores},
    "gf256_kernel": "{kernel}"
  }},
  "baseline_pre_pr2": {{
    "source": "ROADMAP.md seed measurements (scalar log/exp kernel, per-window codec rebuild, sequential runner)",
    "window_encode_mib_s": {BASELINE_ENCODE_MIB_S},
    "window_decode_9_losses_mib_s": {BASELINE_DECODE_MIB_S}
  }},
  "measured": {{
    "scale": "{scale_name}",
    "gf256_mul_add_1316B_mib_s": {gf_blocked_mib:.1},
    "gf256_mul_add_1316B_scalar_ref_mib_s": {gf_scalar_mib:.1},
    "window_encode_mib_s": {encode_mib:.1},
    "window_decode_9_losses_warm_mib_s": {decode_warm_mib:.1},
    "window_decode_9_losses_cold_mib_s": {decode_cold_mib:.1},
    "figure_regen_parallel_s": {regen_parallel:.2},
    "figure_regen_sequential_s": {regen_sequential:.2}
  }},
  "speedup": {{
    "gf256_kernel_vs_scalar": {kernel_speedup:.1},
    "window_encode_vs_baseline": {encode_speedup:.1},
    "window_decode_warm_vs_baseline": {decode_speedup:.1},
    "figure_regen_parallel_vs_sequential": {regen_speedup:.2}
  }}
}}
"#,
        kernel = gf256::kernel_name(),
        gf_blocked_mib = mib_s(params.packet_bytes, gf_blocked),
        gf_scalar_mib = mib_s(params.packet_bytes, gf_scalar),
        kernel_speedup = gf_scalar / gf_blocked,
        encode_speedup = encode_mib / BASELINE_ENCODE_MIB_S,
        decode_speedup = decode_warm_mib / BASELINE_DECODE_MIB_S,
        regen_speedup = regen_sequential / regen_parallel,
    );
    std::fs::write(&out, &json).expect("write bench json");
    eprintln!("bench-json: wrote {out}");
    print!("{json}");
}
