//! `bench-json` — records the scheduling-core throughput and the
//! figure-regeneration wall-clock as a machine-readable JSON file.
//!
//! ```text
//! Usage: bench-json [--scale test|default|paper] [--out PATH]
//! ```
//!
//! The emitted file (default `BENCH_3.json`, checked in at the repo root) is
//! the benchmark trajectory of the scheduling-core rebuild PR: simulator
//! events/s at 100 / 271 / 1000 / 5000 nodes for the calendar-queue core
//! *and* for the pre-PR-3 `BinaryHeap` baseline core measured in the same
//! run (same binary, interleaved repetitions, identical event streams —
//! asserted), the timer-table footprint after the run, the parallel vs
//! sequential figure-regeneration wall-clock, and a bit-identity check of
//! the parallel per-figure sweeps against their sequential paths.

use heap_bench::{parse_scale, simloop};
use heap_workloads::experiments::StandardRuns;
use heap_workloads::{
    run_scenario, run_scenarios_threaded, BandwidthDistribution, ChurnSpec, ProtocolChoice, Scale,
    Scenario,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Node counts the simulator loop is measured at.
const SIM_SIZES: [usize; 4] = [100, 271, 1000, 5000];

/// Events per simulator-loop measurement (full-fidelity scales).
const SIM_TARGET_EVENTS: u64 = 2_000_000;

/// Interleaved repetitions per (size, core) pair; best wall-clock wins.
const SIM_REPS: usize = 5;

/// The simulator-loop measurement plan: full fidelity for the checked-in
/// `BENCH_3.json` scales, a fast shallow pass at `--scale test` so CI's
/// smoke step stays a smoke step.
fn sim_plan(scale_name: &str) -> (&'static [usize], u64, usize) {
    if scale_name == "test" {
        (&SIM_SIZES[..2], 200_000, 2)
    } else {
        (&SIM_SIZES[..], SIM_TARGET_EVENTS, SIM_REPS)
    }
}

fn usage() -> ! {
    eprintln!("usage: bench-json [--scale test|default|paper] [--out PATH]");
    std::process::exit(2);
}

/// The fig1/fig2/fig10-style scenario set used for the sweep identity check
/// (kept small so the check stays affordable at any `--scale`).
fn sweep_scenarios() -> Vec<Scenario> {
    let scale = Scale::test();
    let churn = ChurnSpec::Catastrophic {
        fraction: 0.5,
        at_secs: 3,
        detection_secs: 10,
    };
    vec![
        Scenario::new(
            "sweep/fig1/unconstrained",
            scale,
            BandwidthDistribution::unconstrained(),
            ProtocolChoice::Standard { fanout: 7.0 },
        ),
        Scenario::new(
            "sweep/fig2/ms-691-f7",
            scale,
            BandwidthDistribution::ms_691(),
            ProtocolChoice::Standard { fanout: 7.0 },
        ),
        Scenario::new(
            "sweep/fig2/uniform-691-f15",
            scale,
            BandwidthDistribution::uniform_691(),
            ProtocolChoice::Standard { fanout: 15.0 },
        ),
        Scenario::new(
            "sweep/fig10/heap-50",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Heap { fanout: 7.0 },
        )
        .with_churn(churn),
        Scenario::new(
            "sweep/fig10/standard-50",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Standard { fanout: 7.0 },
        )
        .with_churn(churn),
    ]
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut scale_name = "default".to_string();
    let mut out = "BENCH_3.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| usage());
                scale = parse_scale(&value).unwrap_or_else(|| usage());
                scale_name = value;
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("bench-json: {cores} cores, scale {scale_name}");

    // --- Simulator loop: calendar core vs BinaryHeap baseline core --------
    let (sim_sizes, sim_events, sim_reps) = sim_plan(&scale_name);
    let mut sim_json = String::new();
    for (i, &n) in sim_sizes.iter().enumerate() {
        let mut best_baseline = f64::INFINITY;
        let mut best_calendar = f64::INFINITY;
        let mut events_baseline = 0;
        let mut events_calendar = 0;
        // Interleave the two cores so machine-load phases hit both equally.
        for rep in 0..sim_reps {
            let (e, s) = simloop::measure(n, 7 + rep as u64, sim_events, true);
            events_baseline = e;
            best_baseline = best_baseline.min(s);
            let (e, s) = simloop::measure(n, 7 + rep as u64, sim_events, false);
            events_calendar = e;
            best_calendar = best_calendar.min(s);
        }
        assert_eq!(
            events_baseline, events_calendar,
            "both cores must process the identical event stream"
        );
        let baseline_eps = events_baseline as f64 / best_baseline;
        let calendar_eps = events_calendar as f64 / best_calendar;
        eprintln!(
            "bench-json: simloop n={n}: baseline {:.2} M ev/s, calendar {:.2} M ev/s ({:.2}x)",
            baseline_eps / 1e6,
            calendar_eps / 1e6,
            calendar_eps / baseline_eps
        );
        let sep = if i + 1 < sim_sizes.len() { "," } else { "" };
        writeln!(
            sim_json,
            r#"    {{
      "nodes": {n},
      "events": {events_calendar},
      "binary_heap_baseline_events_per_sec": {baseline_eps:.0},
      "calendar_queue_events_per_sec": {calendar_eps:.0},
      "speedup": {speedup:.2}
    }}{sep}"#,
            speedup = calendar_eps / baseline_eps,
        )
        .expect("write to string");
    }

    // Timer-table footprint: the run arms hundreds of thousands of timers
    // over its lifetime; the slot table must stay bounded by the peak number
    // of concurrently pending timers.
    let (timer_slots, armed_after) = {
        let mut sim = simloop::build_sim(271, 7, simloop::ttl_for(271, sim_events), false);
        sim.run_to_completion();
        (sim.timer_slots(), sim.armed_timers())
    };

    // --- Sweep bit-identity: parallel vs sequential ------------------------
    eprintln!("bench-json: checking parallel sweep bit-identity...");
    let scenarios = sweep_scenarios();
    // The always-threaded path, so the check is meaningful on 1-core hosts.
    let parallel: Vec<u64> = run_scenarios_threaded(&scenarios)
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    let sequential: Vec<u64> = scenarios
        .iter()
        .map(|s| run_scenario(s).fingerprint())
        .collect();
    let sweeps_identical = parallel == sequential;
    assert!(
        sweeps_identical,
        "parallel sweep diverged from the sequential path"
    );

    // --- Figure regeneration (six baseline runs) ---------------------------
    eprintln!("bench-json: figure regeneration (adaptive parallel) at scale {scale_name}...");
    let start = Instant::now();
    let parallel_runs = StandardRuns::compute(scale);
    let regen_parallel = start.elapsed().as_secs_f64();
    eprintln!("bench-json: adaptive {regen_parallel:.1}s; sequential reference...");
    let start = Instant::now();
    let sequential_runs = StandardRuns::compute_sequential(scale);
    let regen_sequential = start.elapsed().as_secs_f64();
    eprintln!("bench-json: sequential {regen_sequential:.1}s");
    assert_eq!(
        parallel_runs.iter().count(),
        sequential_runs.iter().count(),
        "both pipelines ran the same six scenarios"
    );

    let json = format!(
        r#"{{
  "pr": 3,
  "generated_by": "cargo run --release -p heap-bench --bin bench-json -- --scale {scale_name}",
  "host": {{
    "cores": {cores}
  }},
  "simulator_loop": {{
    "workload": "stride-walk flood, {chains} in-flight msgs/node + {far} standing far timers/node, uniform 2-264 ms latency",
    "baseline": "pre-PR-3 scheduling core in the same binary: BinaryHeap event queue, per-callback command-buffer allocation, seed-shim uniform draws",
    "per_size": [
{sim_json}    ],
    "timer_slots_after_271_node_run": {timer_slots},
    "armed_timers_after_run": {armed_after}
  }},
  "figure_regen": {{
    "scale": "{scale_name}",
    "note": "StandardRuns::compute is adaptive: thread-per-scenario on multicore hosts, inline on single-core hosts (results bit-identical either way)",
    "adaptive_parallel_s": {regen_parallel:.2},
    "sequential_s": {regen_sequential:.2},
    "speedup": {regen_speedup:.2}
  }},
  "sweeps_bit_identical": {sweeps_identical}
}}
"#,
        chains = simloop::CHAINS_PER_NODE,
        far = simloop::FAR_TIMERS_PER_NODE,
        regen_speedup = regen_sequential / regen_parallel,
    );
    std::fs::write(&out, &json).expect("write bench json");
    eprintln!("bench-json: wrote {out}");
    print!("{json}");
}
