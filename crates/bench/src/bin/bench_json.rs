//! `bench-json` — records the scheduling-core throughput, the PR 5
//! shard-count sweep and the figure-regeneration wall-clock as a
//! machine-readable JSON file.
//!
//! ```text
//! Usage: bench-json [--scale test|default|paper] [--out PATH]
//! ```
//!
//! The emitted file (default `BENCH_5.json`, checked in at the repo root) is
//! the benchmark trajectory of the simulator-sharding PR: simulator events/s
//! at 100 / 271 / 1000 / 5000 nodes for the PR 4 flat core, the PR 3
//! calendar core and the pre-PR-3 `BinaryHeap` seed core (same binary,
//! interleaved repetitions, identical event streams — asserted); a
//! shard-count sweep (1 / 2 / 4 shards, sequential and scoped-thread
//! stepping) against the flat core at 1000 / 5000 / 10000 nodes; host
//! metadata (core count, GF(256) kernel, CPU model) so cross-PR numbers
//! carry the noisy-host caveat; a sharded-scenario fingerprint check; the
//! parallel vs sequential figure-regeneration wall-clock; and a
//! bit-identity check of the parallel per-figure sweeps.

use heap_bench::simloop::Core;
use heap_bench::{parse_scale, simloop};
use heap_workloads::experiments::StandardRuns;
use heap_workloads::{
    run_scenario, run_scenarios_threaded, BandwidthDistribution, ChurnSpec, ProtocolChoice, Scale,
    Scenario,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Node counts the three-core simulator loop is measured at.
const SIM_SIZES: [usize; 4] = [100, 271, 1000, 5000];

/// Node counts of the shard-count sweep (the ≥10⁴-node territory the
/// sharding PR targets).
const SHARD_SIZES: [usize; 3] = [1000, 5000, 10_000];

/// Shard counts swept per size.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Events per simulator-loop measurement (full-fidelity scales).
const SIM_TARGET_EVENTS: u64 = 2_000_000;

/// Interleaved repetitions per (size, core) pair; best wall-clock wins.
const SIM_REPS: usize = 5;

/// Repetitions per shard-sweep configuration; best wall-clock wins.
const SHARD_REPS: usize = 3;

/// The simulator-loop measurement plan: full fidelity for the checked-in
/// `BENCH_5.json` scales, a fast shallow pass at `--scale test` so CI's
/// smoke step stays a smoke step.
fn sim_plan(scale_name: &str) -> (&'static [usize], u64, usize) {
    if scale_name == "test" {
        (&SIM_SIZES[..2], 200_000, 2)
    } else {
        (&SIM_SIZES[..], SIM_TARGET_EVENTS, SIM_REPS)
    }
}

/// The shard-sweep plan, analogous to [`sim_plan`].
fn shard_plan(scale_name: &str) -> (&'static [usize], u64, usize) {
    if scale_name == "test" {
        (&SHARD_SIZES[..1], 200_000, 1)
    } else {
        (&SHARD_SIZES[..], SIM_TARGET_EVENTS, SHARD_REPS)
    }
}

fn usage() -> ! {
    eprintln!("usage: bench-json [--scale test|default|paper] [--out PATH]");
    std::process::exit(2);
}

/// The fig1/fig2/fig10-style scenario set used for the sweep identity check
/// (kept small so the check stays affordable at any `--scale`).
fn sweep_scenarios() -> Vec<Scenario> {
    let scale = Scale::test();
    let churn = ChurnSpec::Catastrophic {
        fraction: 0.5,
        at_secs: 3,
        detection_secs: 10,
    };
    vec![
        Scenario::new(
            "sweep/fig1/unconstrained",
            scale,
            BandwidthDistribution::unconstrained(),
            ProtocolChoice::Standard { fanout: 7.0 },
        ),
        Scenario::new(
            "sweep/fig2/ms-691-f7",
            scale,
            BandwidthDistribution::ms_691(),
            ProtocolChoice::Standard { fanout: 7.0 },
        ),
        Scenario::new(
            "sweep/fig2/uniform-691-f15",
            scale,
            BandwidthDistribution::uniform_691(),
            ProtocolChoice::Standard { fanout: 15.0 },
        ),
        Scenario::new(
            "sweep/fig10/heap-50",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Heap { fanout: 7.0 },
        )
        .with_churn(churn),
        Scenario::new(
            "sweep/fig10/standard-50",
            scale,
            BandwidthDistribution::ref_691(),
            ProtocolChoice::Standard { fanout: 7.0 },
        )
        .with_churn(churn),
    ]
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut scale_name = "default".to_string();
    let mut out = "BENCH_5.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| usage());
                scale = parse_scale(&value).unwrap_or_else(|| usage());
                scale_name = value;
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    let cores = heap_bench::hostmeta::core_count();
    let gf_kernel = heap_fec::gf256::kernel_name();
    let model = heap_bench::hostmeta::cpu_model();
    eprintln!("bench-json: {cores} cores ({model}), gf kernel {gf_kernel}, scale {scale_name}");

    // --- Simulator loop: PR 4 flat vs PR 3 calendar vs seed BinaryHeap ----
    const CORES: [Core; 3] = [Core::Seed, Core::Pr3, Core::Flat];
    let (sim_sizes, sim_events, sim_reps) = sim_plan(&scale_name);
    let mut sim_json = String::new();
    for (i, &n) in sim_sizes.iter().enumerate() {
        let mut best = [f64::INFINITY; 3];
        let mut events = [0u64; 3];
        // Interleave the cores so machine-load phases hit all three equally.
        for rep in 0..sim_reps {
            for (slot, &core) in CORES.iter().enumerate() {
                let (e, s) = simloop::measure(n, 7 + rep as u64, sim_events, core);
                events[slot] = e;
                best[slot] = best[slot].min(s);
            }
        }
        assert!(
            events.iter().all(|&e| e == events[0]),
            "all cores must process the identical event stream"
        );
        let eps: Vec<f64> = (0..CORES.len())
            .map(|slot| events[slot] as f64 / best[slot])
            .collect();
        let (seed_eps, pr3_eps, flat_eps) = (eps[0], eps[1], eps[2]);
        eprintln!(
            "bench-json: simloop n={n}: seed {:.2} M ev/s, pr3 {:.2} M ev/s, flat {:.2} M ev/s ({:.2}x vs pr3, {:.2}x vs seed)",
            seed_eps / 1e6,
            pr3_eps / 1e6,
            flat_eps / 1e6,
            flat_eps / pr3_eps,
            flat_eps / seed_eps
        );
        let sep = if i + 1 < sim_sizes.len() { "," } else { "" };
        writeln!(
            sim_json,
            r#"    {{
      "nodes": {n},
      "events": {events},
      "seed_binary_heap_events_per_sec": {seed_eps:.0},
      "pr3_calendar_events_per_sec": {pr3_eps:.0},
      "pr4_flat_events_per_sec": {flat_eps:.0},
      "speedup_vs_pr3": {vs_pr3:.2},
      "speedup_vs_seed": {vs_seed:.2}
    }}{sep}"#,
            events = events[0],
            vs_pr3 = flat_eps / pr3_eps,
            vs_seed = flat_eps / seed_eps,
        )
        .expect("write to string");
    }

    // --- Shard-count sweep: flat vs 1/2/4 shards, sequential + threaded ---
    let (shard_sizes, shard_events, shard_reps) = shard_plan(&scale_name);
    let mut shard_json = String::new();
    for (i, &n) in shard_sizes.iter().enumerate() {
        // One measurement plan per size: the flat baseline plus every shard
        // count in both execution modes, interleaved across repetitions.
        let mut flat_best = f64::INFINITY;
        let mut flat_events = 0u64;
        let mut seq_best = [f64::INFINITY; SHARD_COUNTS.len()];
        let mut thr_best = [f64::INFINITY; SHARD_COUNTS.len()];
        for rep in 0..shard_reps {
            let seed = 7 + rep as u64;
            let (e, s) = simloop::measure(n, seed, shard_events, Core::Flat);
            flat_events = e;
            flat_best = flat_best.min(s);
            for (slot, &shards) in SHARD_COUNTS.iter().enumerate() {
                let (e_seq, s_seq) = simloop::measure_sharded(n, seed, shard_events, shards, false);
                assert_eq!(
                    e_seq, flat_events,
                    "sharded stream diverged ({shards} shards)"
                );
                seq_best[slot] = seq_best[slot].min(s_seq);
                let (e_thr, s_thr) = simloop::measure_sharded(n, seed, shard_events, shards, true);
                assert_eq!(
                    e_thr, flat_events,
                    "threaded sharded stream diverged ({shards} shards)"
                );
                thr_best[slot] = thr_best[slot].min(s_thr);
            }
        }
        let flat_eps = flat_events as f64 / flat_best;
        let mut per_count = String::new();
        for (slot, &shards) in SHARD_COUNTS.iter().enumerate() {
            let seq_eps = flat_events as f64 / seq_best[slot];
            let thr_eps = flat_events as f64 / thr_best[slot];
            eprintln!(
                "bench-json: shards n={n} x{shards}: seq {:.2} M ev/s ({:.2}x flat), threaded {:.2} M ev/s ({:.2}x flat)",
                seq_eps / 1e6,
                seq_eps / flat_eps,
                thr_eps / 1e6,
                thr_eps / flat_eps,
            );
            let sep = if slot + 1 < SHARD_COUNTS.len() {
                ","
            } else {
                ""
            };
            writeln!(
                per_count,
                r#"        {{
          "shards": {shards},
          "sequential_events_per_sec": {seq_eps:.0},
          "sequential_vs_flat": {seq_ratio:.2},
          "threaded_events_per_sec": {thr_eps:.0},
          "threaded_vs_flat": {thr_ratio:.2}
        }}{sep}"#,
                seq_ratio = seq_eps / flat_eps,
                thr_ratio = thr_eps / flat_eps,
            )
            .expect("write to string");
        }
        let sep = if i + 1 < shard_sizes.len() { "," } else { "" };
        writeln!(
            shard_json,
            r#"    {{
      "nodes": {n},
      "events": {flat_events},
      "flat_events_per_sec": {flat_eps:.0},
      "per_shard_count": [
{per_count}      ]
    }}{sep}"#,
        )
        .expect("write to string");
    }

    // --- Sharded scenario fingerprint check --------------------------------
    eprintln!("bench-json: checking sharded-scenario bit-identity...");
    let scenario = Scenario::new(
        "shard-check/heap-ms691",
        Scale::test(),
        BandwidthDistribution::ms_691(),
        ProtocolChoice::Heap { fanout: 7.0 },
    );
    let single_fp = run_scenario(&scenario).fingerprint();
    let sharded_fp = run_scenario(
        &scenario
            .clone()
            .with_sharding(heap_workloads::ShardingChoice::sharded(4)),
    )
    .fingerprint();
    let threaded_fp =
        run_scenario(&scenario.with_sharding(heap_workloads::ShardingChoice::sharded_threaded(4)))
            .fingerprint();
    let sharded_scenarios_identical = single_fp == sharded_fp && single_fp == threaded_fp;
    assert!(
        sharded_scenarios_identical,
        "sharded scenario diverged from the single-core engine"
    );

    // --- Sweep bit-identity: parallel vs sequential ------------------------
    eprintln!("bench-json: checking parallel sweep bit-identity...");
    let scenarios = sweep_scenarios();
    // The always-threaded path, so the check is meaningful on 1-core hosts.
    let parallel: Vec<u64> = run_scenarios_threaded(&scenarios)
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    let sequential: Vec<u64> = scenarios
        .iter()
        .map(|s| run_scenario(s).fingerprint())
        .collect();
    let sweeps_identical = parallel == sequential;
    assert!(
        sweeps_identical,
        "parallel sweep diverged from the sequential path"
    );

    // --- Figure regeneration (six baseline runs) ---------------------------
    eprintln!("bench-json: figure regeneration (adaptive parallel) at scale {scale_name}...");
    let start = Instant::now();
    let parallel_runs = StandardRuns::compute(scale);
    let regen_parallel = start.elapsed().as_secs_f64();
    eprintln!("bench-json: adaptive {regen_parallel:.1}s; sequential reference...");
    let start = Instant::now();
    let sequential_runs = StandardRuns::compute_sequential(scale);
    let regen_sequential = start.elapsed().as_secs_f64();
    eprintln!("bench-json: sequential {regen_sequential:.1}s");
    assert_eq!(
        parallel_runs.iter().count(),
        sequential_runs.iter().count(),
        "both pipelines ran the same six scenarios"
    );

    let json = format!(
        r#"{{
  "pr": 5,
  "generated_by": "cargo run --release -p heap-bench --bin bench-json -- --scale {scale_name}",
  "host": {{
    "cores": {cores},
    "cpu_model": "{model}",
    "gf256_kernel": "{gf_kernel}",
    "note": "shared container, +/-15-20% run-to-run noise; compare numbers within this file, not across BENCH_*.json generated on different days"
  }},
  "simulator_loop": {{
    "workload": "stride-walk flood, {chains} in-flight msgs/node + {far} standing far timers/node, uniform 2-264 ms latency",
    "baselines": "both predecessor cores in the same binary: pr3_calendar (calendar queue, pooled deferred command buffer, per-event dispatch) and seed_binary_heap (BinaryHeap queue, per-callback allocation, seed-shim uniform draws)",
    "per_size": [
{sim_json}    ]
  }},
  "shard_sweep": {{
    "workload": "same stride-walk flood on the PR 5 sharded core (contiguous partition), all shard counts processing the event stream bit-identically to the flat core (asserted per run)",
    "per_size": [
{shard_json}    ],
    "analysis": "sequential vs threaded shard stepping on this 1-core host: a single shard runs 1.03-1.16x the flat core (largest at 10000 nodes) because the exchange applies every push in sorted (time, seq) batches - bucket-ordered appends into the calendar beat the flat core interleaved pushes once the standing event population outgrows the mid-level cache; 2/4 shards pay the per-bucket multi-queue stepping and exchange routing with no spare core to hide it (0.72-0.92x, recovering as n grows, which is the cache-locality trend the sharding targets); scoped-thread stepping adds 3 barrier waits per ~1 ms virtual bucket that serialise to pure overhead here (0.32-1.16x) - the threaded numbers are a correctness demonstration (bit-identical, asserted per run), and shard-per-core speedup is a multi-core measurement (see ROADMAP)"
  }},
  "sharded_scenarios_bit_identical": {sharded_scenarios_identical},
  "figure_regen": {{
    "scale": "{scale_name}",
    "note": "StandardRuns::compute is adaptive: thread-per-scenario on multicore hosts, inline on single-core hosts (results bit-identical either way)",
    "adaptive_parallel_s": {regen_parallel:.2},
    "sequential_s": {regen_sequential:.2},
    "speedup": {regen_speedup:.2}
  }},
  "sweeps_bit_identical": {sweeps_identical}
}}
"#,
        chains = simloop::CHAINS_PER_NODE,
        far = simloop::FAR_TIMERS_PER_NODE,
        regen_speedup = regen_sequential / regen_parallel,
    );
    std::fs::write(&out, &json).expect("write bench json");
    eprintln!("bench-json: wrote {out}");
    print!("{json}");
}
