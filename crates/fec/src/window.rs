//! The FEC window codec used by the streaming application.
//!
//! A window groups [`WindowParams::data_packets`] consecutive source packets
//! and adds [`WindowParams::parity_packets`] parity packets computed with the
//! systematic Reed–Solomon code. The paper uses 101 source + 9 parity packets
//! of 1316 bytes each; a window is viewable ("jitter-free") iff at least 101
//! of its 110 packets arrive in time.

use crate::rs::{DecodeWorkspace, ReedSolomon, RsError};
use serde::{Deserialize, Serialize};

/// Geometry of an FEC window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowParams {
    /// Number of source (data) packets per window.
    pub data_packets: usize,
    /// Number of parity packets per window.
    pub parity_packets: usize,
    /// Size of each packet payload in bytes.
    pub packet_bytes: usize,
}

impl WindowParams {
    /// The geometry used throughout the paper: 101 source packets, 9 parity
    /// packets, 1316-byte payloads.
    pub const PAPER: WindowParams = WindowParams {
        data_packets: 101,
        parity_packets: 9,
        packet_bytes: 1316,
    };

    /// Total number of packets per window.
    pub const fn total_packets(&self) -> usize {
        self.data_packets + self.parity_packets
    }

    /// Minimum number of packets needed to decode the window.
    pub const fn decode_threshold(&self) -> usize {
        self.data_packets
    }

    /// Validates the geometry for use with the GF(2⁸) Reed–Solomon code.
    pub fn is_valid(&self) -> bool {
        self.data_packets > 0
            && self.parity_packets > 0
            && self.total_packets() <= 256
            && self.packet_bytes > 0
    }
}

impl Default for WindowParams {
    fn default() -> Self {
        WindowParams::PAPER
    }
}

/// Encodes a window of source packets into source + parity packets.
///
/// # Examples
///
/// ```
/// use heap_fec::{WindowEncoder, WindowParams};
///
/// let params = WindowParams { data_packets: 4, parity_packets: 2, packet_bytes: 8 };
/// let encoder = WindowEncoder::new(params).unwrap();
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
/// let packets = encoder.encode(&data).unwrap();
/// assert_eq!(packets.len(), 6);
/// assert_eq!(&packets[0], &data[0]); // systematic: data packets first, verbatim
/// ```
#[derive(Debug, Clone)]
pub struct WindowEncoder {
    params: WindowParams,
    rs: ReedSolomon,
}

impl WindowEncoder {
    /// Creates an encoder for the given geometry, or `None` if the geometry
    /// is invalid.
    pub fn new(params: WindowParams) -> Option<Self> {
        if !params.is_valid() {
            return None;
        }
        let rs = ReedSolomon::new(params.data_packets, params.parity_packets)?;
        Some(WindowEncoder { params, rs })
    }

    /// The window geometry.
    pub fn params(&self) -> WindowParams {
        self.params
    }

    /// Encodes exactly `data_packets` source payloads into the full window of
    /// `total_packets` payloads (source packets first, verbatim, followed by
    /// parity packets).
    ///
    /// # Errors
    ///
    /// Returns an error if the shard count or shard lengths do not match the
    /// geometry.
    pub fn encode<S: AsRef<[u8]>>(&self, data: &[S]) -> Result<Vec<Vec<u8>>, RsError> {
        if data
            .iter()
            .any(|d| d.as_ref().len() != self.params.packet_bytes)
        {
            return Err(RsError::ShardLengthMismatch);
        }
        let parity = self.rs.encode(data)?;
        let mut out: Vec<Vec<u8>> = data.iter().map(|d| d.as_ref().to_vec()).collect();
        out.extend(parity);
        Ok(out)
    }
}

/// Collects the packets of one window as they arrive and decodes the window
/// once enough packets are present.
///
/// # Examples
///
/// ```
/// use heap_fec::{WindowDecoder, WindowEncoder, WindowParams};
///
/// let params = WindowParams { data_packets: 3, parity_packets: 2, packet_bytes: 4 };
/// let encoder = WindowEncoder::new(params).unwrap();
/// let data: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 4]).collect();
/// let packets = encoder.encode(&data).unwrap();
///
/// let mut decoder = WindowDecoder::new(params);
/// decoder.insert(1, packets[1].clone());
/// decoder.insert(3, packets[3].clone()); // a parity packet
/// assert!(!decoder.is_decodable());
/// decoder.insert(4, packets[4].clone());
/// assert!(decoder.is_decodable());
/// let recovered = decoder.decode().unwrap();
/// assert_eq!(recovered, data);
/// ```
#[derive(Debug, Clone)]
pub struct WindowDecoder {
    params: WindowParams,
    shards: Vec<Option<Vec<u8>>>,
    received: usize,
}

impl WindowDecoder {
    /// Creates an empty decoder for the given geometry.
    pub fn new(params: WindowParams) -> Self {
        WindowDecoder {
            shards: vec![None; params.total_packets()],
            params,
            received: 0,
        }
    }

    /// The window geometry.
    pub fn params(&self) -> WindowParams {
        self.params
    }

    /// Inserts packet `index` (0-based within the window). Returns `true` if
    /// the packet was new. Out-of-range indices and duplicates are ignored.
    pub fn insert(&mut self, index: usize, payload: Vec<u8>) -> bool {
        self.try_insert(index, payload).is_ok()
    }

    /// Like [`WindowDecoder::insert`], but hands a rejected payload (duplicate
    /// or out-of-range index) back to the caller so its buffer can be reused.
    ///
    /// # Errors
    ///
    /// Returns the payload unchanged when it was not inserted.
    pub fn try_insert(&mut self, index: usize, payload: Vec<u8>) -> Result<(), Vec<u8>> {
        if index >= self.shards.len() || self.shards[index].is_some() {
            return Err(payload);
        }
        self.shards[index] = Some(payload);
        self.received += 1;
        Ok(())
    }

    /// Number of distinct packets received so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Number of distinct *source* packets received so far (relevant for the
    /// delivery ratio inside jittered windows, Table 2).
    pub fn received_data(&self) -> usize {
        self.shards[..self.params.data_packets]
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Indices of the packets still missing.
    pub fn missing(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether enough packets are present to decode the full window.
    pub fn is_decodable(&self) -> bool {
        self.received >= self.params.decode_threshold()
    }

    /// Decodes the window in place and returns the source packets as owned
    /// vectors.
    ///
    /// Convenience wrapper over [`WindowDecoder::decode_with`] using a
    /// throwaway workspace; loops decoding many windows should hold a
    /// [`DecodeWorkspace`] and call `decode_with` instead so the codec, the
    /// erasure-pattern inverses and the shard buffers are reused.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::NotEnoughShards`] when fewer than `data_packets`
    /// packets have been inserted.
    pub fn decode(&mut self) -> Result<Vec<Vec<u8>>, RsError> {
        self.decode_with(&mut DecodeWorkspace::new())?;
        Ok(self.shards[..self.params.data_packets]
            .iter()
            .map(|s| s.clone().expect("reconstructed"))
            .collect())
    }

    /// Decodes the window in place, reusing the caches of `workspace`.
    ///
    /// All missing packets (source *and* parity) are reconstructed into the
    /// decoder's own shard slots — no shards are cloned and, with a warm
    /// workspace, nothing is allocated. Access the result through
    /// [`WindowDecoder::packet`] / [`WindowDecoder::data_packets`], and hand
    /// the buffers back with [`WindowDecoder::reset`] when done with the
    /// window.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::NotEnoughShards`] when fewer than `data_packets`
    /// packets have been inserted.
    pub fn decode_with(&mut self, workspace: &mut DecodeWorkspace) -> Result<(), RsError> {
        if !self.is_decodable() {
            return Err(RsError::NotEnoughShards {
                present: self.received,
                required: self.params.decode_threshold(),
            });
        }
        workspace.reconstruct(
            self.params.data_packets,
            self.params.parity_packets,
            &mut self.shards,
        )?;
        self.received = self.shards.len();
        Ok(())
    }

    /// The payload of packet `index`, if present (always present for every
    /// index after a successful decode).
    pub fn packet(&self, index: usize) -> Option<&[u8]> {
        self.shards.get(index)?.as_deref()
    }

    /// The source packets currently present, in order, as borrowed slices.
    /// After a successful decode this yields the full window payload.
    pub fn data_packets(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.shards[..self.params.data_packets]
            .iter()
            .filter_map(|s| s.as_deref())
    }

    /// Clears the decoder for reuse on the next window, returning its shard
    /// buffers to `workspace`'s pool.
    pub fn reset(&mut self, workspace: &mut DecodeWorkspace) {
        for slot in self.shards.iter_mut() {
            if let Some(buffer) = slot.take() {
                workspace.recycle(buffer);
            }
        }
        self.received = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn small_params() -> WindowParams {
        WindowParams {
            data_packets: 10,
            parity_packets: 4,
            packet_bytes: 16,
        }
    }

    fn make_window(params: WindowParams, seed: u64) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data: Vec<Vec<u8>> = (0..params.data_packets)
            .map(|_| (0..params.packet_bytes).map(|_| rng.gen()).collect())
            .collect();
        let packets = WindowEncoder::new(params).unwrap().encode(&data).unwrap();
        (data, packets)
    }

    #[test]
    fn paper_params_are_valid() {
        let p = WindowParams::PAPER;
        assert!(p.is_valid());
        assert_eq!(p.total_packets(), 110);
        assert_eq!(p.decode_threshold(), 101);
        assert_eq!(WindowParams::default(), p);
    }

    #[test]
    fn invalid_geometries_rejected() {
        assert!(WindowEncoder::new(WindowParams {
            data_packets: 0,
            parity_packets: 1,
            packet_bytes: 10
        })
        .is_none());
        assert!(WindowEncoder::new(WindowParams {
            data_packets: 250,
            parity_packets: 10,
            packet_bytes: 10
        })
        .is_none());
        assert!(WindowEncoder::new(WindowParams {
            data_packets: 10,
            parity_packets: 2,
            packet_bytes: 0
        })
        .is_none());
    }

    #[test]
    fn encode_checks_packet_size() {
        let enc = WindowEncoder::new(small_params()).unwrap();
        let bad: Vec<Vec<u8>> = (0..10).map(|_| vec![0u8; 7]).collect();
        assert_eq!(enc.encode(&bad).unwrap_err(), RsError::ShardLengthMismatch);
        assert_eq!(enc.params(), small_params());
    }

    #[test]
    fn systematic_prefix_is_verbatim() {
        let params = small_params();
        let (data, packets) = make_window(params, 1);
        assert_eq!(&packets[..params.data_packets], data.as_slice());
    }

    #[test]
    fn decoder_tracks_counts_and_missing() {
        let params = small_params();
        let (_, packets) = make_window(params, 2);
        let mut dec = WindowDecoder::new(params);
        assert_eq!(dec.params(), params);
        assert!(dec.insert(0, packets[0].clone()));
        assert!(!dec.insert(0, packets[0].clone()), "duplicate ignored");
        assert!(!dec.insert(99, vec![]), "out of range ignored");
        assert!(dec.insert(12, packets[12].clone()));
        assert_eq!(dec.received(), 2);
        assert_eq!(dec.received_data(), 1);
        assert_eq!(dec.missing().len(), params.total_packets() - 2);
        assert!(!dec.is_decodable());
        assert!(matches!(dec.decode(), Err(RsError::NotEnoughShards { .. })));
    }

    #[test]
    fn decode_from_exactly_threshold_packets() {
        let params = small_params();
        let (data, packets) = make_window(params, 3);
        let mut dec = WindowDecoder::new(params);
        // Insert the last `data_packets` packets (mostly parity-heavy subset).
        let skip = params.total_packets() - params.decode_threshold();
        for (i, packet) in packets.iter().enumerate().skip(skip) {
            dec.insert(i, packet.clone());
        }
        assert!(dec.is_decodable());
        assert_eq!(dec.decode().unwrap(), data);
    }

    #[test]
    fn decode_paper_geometry_with_losses() {
        let params = WindowParams {
            packet_bytes: 8, // keep the test fast; shard counts match the paper
            ..WindowParams::PAPER
        };
        let (data, packets) = make_window(params, 4);
        let mut dec = WindowDecoder::new(params);
        for (i, p) in packets.iter().enumerate() {
            if i % 13 == 0 && i / 13 < 9 {
                continue; // drop 9 packets
            }
            dec.insert(i, p.clone());
        }
        assert_eq!(dec.received(), 110 - 9);
        assert_eq!(dec.decode().unwrap(), data);
    }

    #[test]
    fn decode_with_reuses_workspace_across_windows() {
        let params = small_params();
        let mut ws = DecodeWorkspace::new();
        let mut dec = WindowDecoder::new(params);
        for seed in 0..5u64 {
            let (data, packets) = make_window(params, seed);
            for (i, p) in packets.iter().enumerate() {
                // Drop the same 4 packets every window: one cached inverse.
                if i % 3 != 0 || i >= 12 {
                    dec.insert(i, p.clone());
                }
            }
            dec.decode_with(&mut ws).unwrap();
            let decoded: Vec<&[u8]> = dec.data_packets().collect();
            assert_eq!(decoded.len(), params.data_packets);
            for (d, orig) in decoded.iter().zip(&data) {
                assert_eq!(*d, orig.as_slice(), "window {seed}");
            }
            // Every packet (parity included) is materialised after decode.
            assert_eq!(dec.received(), params.total_packets());
            assert!(dec.missing().is_empty());
            assert_eq!(
                dec.packet(params.total_packets() - 1).map(|p| p.len()),
                Some(params.packet_bytes)
            );
            dec.reset(&mut ws);
            assert_eq!(dec.received(), 0);
        }
        assert_eq!(ws.cached_inverses(), 1, "same loss pattern, one inverse");
        assert!(
            ws.pooled_buffers() > 0,
            "reset returned buffers to the pool"
        );
    }

    #[test]
    fn decode_with_errors_below_threshold() {
        let params = small_params();
        let (_, packets) = make_window(params, 77);
        let mut ws = DecodeWorkspace::new();
        let mut dec = WindowDecoder::new(params);
        for (i, packet) in packets
            .iter()
            .enumerate()
            .take(params.decode_threshold() - 1)
        {
            dec.insert(i, packet.clone());
        }
        assert!(matches!(
            dec.decode_with(&mut ws),
            Err(RsError::NotEnoughShards { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Whatever subset of >= k packets survives, decoding recovers the data.
        #[test]
        fn any_sufficient_subset_decodes(seed in 0u64..5_000, losses in 0usize..=4) {
            let params = small_params();
            let (data, packets) = make_window(params, seed);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
            let mut idx: Vec<usize> = (0..params.total_packets()).collect();
            idx.shuffle(&mut rng);
            let keep: std::collections::HashSet<usize> =
                idx.into_iter().skip(losses).collect();
            let mut dec = WindowDecoder::new(params);
            for (i, p) in packets.iter().enumerate() {
                if keep.contains(&i) {
                    dec.insert(i, p.clone());
                }
            }
            prop_assert!(dec.is_decodable());
            prop_assert_eq!(dec.decode().unwrap(), data);
        }
    }
}
