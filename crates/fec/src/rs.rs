//! Systematic Reed–Solomon erasure coding.
//!
//! The encoder is built from a `(k+m) × k` Vandermonde matrix normalised so
//! that its top `k × k` block is the identity: the first `k` output shards
//! are the data shards verbatim (systematic), the remaining `m` are parity.
//! Any `k` of the `k+m` shards suffice to reconstruct all data shards.

use crate::gf256;
use crate::matrix::Matrix;
use std::collections::HashMap;
use std::fmt;

/// Errors returned by [`ReedSolomon`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Fewer shards than data shards are present; reconstruction is impossible.
    NotEnoughShards {
        /// Shards present.
        present: usize,
        /// Shards required (the number of data shards).
        required: usize,
    },
    /// The number of shards handed to an operation does not match the codec.
    WrongShardCount {
        /// Shards provided.
        provided: usize,
        /// Shards expected.
        expected: usize,
    },
    /// Shards have inconsistent lengths.
    ShardLengthMismatch,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::NotEnoughShards { present, required } => write!(
                f,
                "not enough shards to reconstruct: {present} present, {required} required"
            ),
            RsError::WrongShardCount { provided, expected } => write!(
                f,
                "wrong number of shards: {provided} provided, {expected} expected"
            ),
            RsError::ShardLengthMismatch => write!(f, "shards have inconsistent lengths"),
        }
    }
}

impl std::error::Error for RsError {}

/// Reusable scratch state for repeated Reed–Solomon reconstructions.
///
/// Decoding a window from scratch pays three hidden costs per call: building
/// a fresh codec (a `(k+m)×k` Vandermonde construction plus a `k×k`
/// Gauss–Jordan inversion — cubic in `k`), inverting the decode submatrix for
/// the observed erasure pattern, and allocating an output buffer per missing
/// shard. A `DecodeWorkspace` amortises all three across calls:
///
/// * the codec is cached per geometry,
/// * inverted decode matrices are cached keyed by the set of rows used
///   (bounded by [`DecodeWorkspace::MAX_CACHED_INVERSES`]; typical loss
///   patterns in a stream repeat heavily),
/// * shard buffers recovered from decoded windows are pooled and reused.
///
/// A workspace is cheap to create but only pays off when reused; keep one
/// per receiving pipeline (it is not `Sync` — use one per thread).
///
/// # Examples
///
/// ```
/// use heap_fec::{DecodeWorkspace, ReedSolomon};
///
/// let rs = ReedSolomon::new(4, 2).unwrap();
/// let data: Vec<Vec<u8>> = vec![vec![1, 2], vec![3, 4], vec![5, 6], vec![7, 8]];
/// let parity = rs.encode(&data).unwrap();
/// let mut ws = DecodeWorkspace::new();
/// for _ in 0..10 {
///     let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
///     shards.extend(parity.iter().cloned().map(Some));
///     shards[0] = None;
///     shards[5] = None;
///     rs.reconstruct_with(&mut shards, &mut ws).unwrap();
///     assert_eq!(shards[0].as_deref(), Some(&[1u8, 2][..]));
/// }
/// assert_eq!(ws.cached_inverses(), 1); // same erasure pattern every time
/// ```
#[derive(Debug, Default)]
pub struct DecodeWorkspace {
    /// Geometry `(data_shards, parity_shards)` the caches are valid for.
    geometry: Option<(usize, usize)>,
    /// Codec cached for [`DecodeWorkspace::reconstruct`].
    codec: Option<ReedSolomon>,
    /// Inverted decode matrices keyed by the encode-matrix rows used.
    inverses: HashMap<Vec<usize>, Matrix>,
    /// Recycled shard buffers, handed out by [`DecodeWorkspace::take_buffer`].
    buffers: Vec<Vec<u8>>,
}

impl DecodeWorkspace {
    /// Upper bound on cached inverted matrices; the cache is cleared when a
    /// new pattern would exceed it (each paper-geometry inverse is ~10 KiB).
    pub const MAX_CACHED_INVERSES: usize = 512;

    /// Upper bound on pooled shard buffers.
    const MAX_POOLED_BUFFERS: usize = 512;

    /// Creates an empty workspace.
    pub fn new() -> Self {
        DecodeWorkspace::default()
    }

    /// Number of inverted decode matrices currently cached.
    pub fn cached_inverses(&self) -> usize {
        self.inverses.len()
    }

    /// Number of shard buffers currently pooled.
    pub fn pooled_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// Reconstructs `shards` for the given geometry using a codec cached in
    /// the workspace (built on first use, reused afterwards).
    ///
    /// # Errors
    ///
    /// Same as [`ReedSolomon::reconstruct`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (zero shard counts or more than 256
    /// total shards).
    pub fn reconstruct(
        &mut self,
        data_shards: usize,
        parity_shards: usize,
        shards: &mut [Option<Vec<u8>>],
    ) -> Result<(), RsError> {
        self.bind_geometry(data_shards, parity_shards);
        let codec = match self.codec.take() {
            Some(codec) => codec,
            None => ReedSolomon::new(data_shards, parity_shards)
                .expect("workspace geometry must be a valid Reed-Solomon geometry"),
        };
        // The codec is moved out while reconstructing so the workspace can be
        // borrowed mutably for buffers and the inverse cache, then put back.
        let result = codec.reconstruct_with(shards, self);
        self.codec = Some(codec);
        result
    }

    /// Returns a shard buffer to the pool so a later reconstruction can reuse
    /// it instead of allocating.
    pub fn recycle(&mut self, buffer: Vec<u8>) {
        if self.buffers.len() < Self::MAX_POOLED_BUFFERS {
            self.buffers.push(buffer);
        }
    }

    /// Drops caches that are only valid for one geometry when the geometry
    /// changes (the buffer pool survives — buffers are length-agnostic).
    fn bind_geometry(&mut self, data_shards: usize, parity_shards: usize) {
        if self.geometry != Some((data_shards, parity_shards)) {
            self.geometry = Some((data_shards, parity_shards));
            self.codec = None;
            self.inverses.clear();
        }
    }

    /// A zeroed buffer of the given length, pooled if possible.
    fn take_buffer(&mut self, len: usize) -> Vec<u8> {
        let mut buffer = self.buffers.pop().unwrap_or_default();
        buffer.clear();
        buffer.resize(len, 0);
        buffer
    }

    /// The cached inverse of the `use_rows` submatrix of `encode`, computing
    /// and caching it on first sight of this row set. A cache hit performs no
    /// allocation: the lookup borrows `use_rows`, and the key is only cloned
    /// on a miss.
    fn inverse_for(&mut self, encode: &Matrix, use_rows: &[usize]) -> &Matrix {
        if !self.inverses.contains_key(use_rows) {
            if self.inverses.len() >= Self::MAX_CACHED_INVERSES {
                self.inverses.clear();
            }
            let inverse = encode
                .select_rows(use_rows)
                .invert()
                .expect("any k rows of the systematic Vandermonde matrix are independent");
            self.inverses.insert(use_rows.to_vec(), inverse);
        }
        &self.inverses[use_rows]
    }
}

/// A systematic Reed–Solomon erasure codec over GF(2⁸).
///
/// # Examples
///
/// ```
/// use heap_fec::ReedSolomon;
///
/// let rs = ReedSolomon::new(4, 2).unwrap();
/// let data: Vec<Vec<u8>> = vec![vec![1, 2], vec![3, 4], vec![5, 6], vec![7, 8]];
/// let parity = rs.encode(&data).unwrap();
/// assert_eq!(parity.len(), 2);
///
/// // Lose two data shards, reconstruct from the rest.
/// let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
/// shards.extend(parity.into_iter().map(Some));
/// shards[0] = None;
/// shards[3] = None;
/// rs.reconstruct(&mut shards).unwrap();
/// assert_eq!(shards[0].as_deref(), Some(&[1u8, 2][..]));
/// assert_eq!(shards[3].as_deref(), Some(&[7u8, 8][..]));
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_shards: usize,
    parity_shards: usize,
    /// The `(k+m) × k` systematic encoding matrix.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates a codec with `data_shards` data shards and `parity_shards`
    /// parity shards.
    ///
    /// Returns `None` if either count is zero or the total exceeds 256
    /// (the field size limits the number of distinct evaluation points).
    pub fn new(data_shards: usize, parity_shards: usize) -> Option<Self> {
        if data_shards == 0 || parity_shards == 0 || data_shards + parity_shards > 256 {
            return None;
        }
        let total = data_shards + parity_shards;
        let vandermonde = Matrix::vandermonde(total, data_shards);
        let top = vandermonde.select_rows(&(0..data_shards).collect::<Vec<_>>());
        let top_inv = top
            .invert()
            .expect("top k x k Vandermonde block is always invertible");
        let encode_matrix = vandermonde.multiply(&top_inv);
        Some(ReedSolomon {
            data_shards,
            parity_shards,
            encode_matrix,
        })
    }

    /// Number of data shards (`k`).
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Number of parity shards (`m`).
    pub fn parity_shards(&self) -> usize {
        self.parity_shards
    }

    /// Total number of shards (`k + m`).
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    /// Encodes `data` (exactly `k` equal-length shards) and returns the `m`
    /// parity shards.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::WrongShardCount`] or [`RsError::ShardLengthMismatch`]
    /// if the input does not match the codec geometry.
    pub fn encode<S: AsRef<[u8]>>(&self, data: &[S]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.data_shards {
            return Err(RsError::WrongShardCount {
                provided: data.len(),
                expected: self.data_shards,
            });
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|s| s.as_ref().len() != len) {
            return Err(RsError::ShardLengthMismatch);
        }
        let mut parity = vec![vec![0u8; len]; self.parity_shards];
        for (p, out) in parity.iter_mut().enumerate() {
            let row = self.encode_matrix.row(self.data_shards + p);
            for (d, shard) in data.iter().enumerate() {
                gf256::mul_add_slice(out, shard.as_ref(), row[d]);
            }
        }
        Ok(parity)
    }

    /// Reconstructs all missing shards in place.
    ///
    /// `shards` must contain exactly `k + m` entries where `None` marks a
    /// missing shard. On success every entry is `Some`.
    ///
    /// # Errors
    ///
    /// * [`RsError::WrongShardCount`] if the slice length is not `k + m`.
    /// * [`RsError::NotEnoughShards`] if fewer than `k` shards are present.
    /// * [`RsError::ShardLengthMismatch`] if present shards disagree on length.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        self.reconstruct_with(shards, &mut DecodeWorkspace::new())
    }

    /// Reconstructs all missing shards in place, reusing the cached inverses
    /// and pooled buffers of `workspace` (see [`DecodeWorkspace`]).
    ///
    /// Behaves exactly like [`ReedSolomon::reconstruct`]; with a warm
    /// workspace the erasure-pattern matrix inversion and the per-shard
    /// allocations disappear from the hot path.
    ///
    /// # Errors
    ///
    /// Same as [`ReedSolomon::reconstruct`].
    pub fn reconstruct_with(
        &self,
        shards: &mut [Option<Vec<u8>>],
        workspace: &mut DecodeWorkspace,
    ) -> Result<(), RsError> {
        if shards.len() != self.total_shards() {
            return Err(RsError::WrongShardCount {
                provided: shards.len(),
                expected: self.total_shards(),
            });
        }
        let present: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| i)
            .collect();
        if present.len() < self.data_shards {
            return Err(RsError::NotEnoughShards {
                present: present.len(),
                required: self.data_shards,
            });
        }
        let len = shards[present[0]].as_ref().expect("present shard").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present shard").len() != len)
        {
            return Err(RsError::ShardLengthMismatch);
        }
        // Nothing to do if all data shards are already present and parity is
        // not requested to be rebuilt.
        if shards.iter().all(|s| s.is_some()) {
            return Ok(());
        }
        workspace.bind_geometry(self.data_shards, self.parity_shards);

        // Pick the first k present shards and invert the corresponding rows of
        // the encoding matrix: decode_matrix * present_shards = data_shards.
        // The inverse is looked up in (or inserted into) the workspace cache.
        let use_rows: Vec<usize> = present.iter().copied().take(self.data_shards).collect();
        let missing_data: Vec<usize> = (0..self.data_shards)
            .filter(|&d| shards[d].is_none())
            .collect();

        // Grab output buffers before borrowing the cached inverse so the two
        // workspace borrows do not overlap.
        let mut outputs: Vec<Vec<u8>> = missing_data
            .iter()
            .map(|_| workspace.take_buffer(len))
            .collect();
        let decode = workspace.inverse_for(&self.encode_matrix, &use_rows);

        // Recover missing data shards.
        for (out, &d) in outputs.iter_mut().zip(&missing_data) {
            for (j, &src_row) in use_rows.iter().enumerate() {
                let shard = shards[src_row].as_ref().expect("present shard");
                gf256::mul_add_slice(out, shard, decode.get(d, j));
            }
        }
        for (out, &d) in outputs.into_iter().zip(&missing_data) {
            shards[d] = Some(out);
        }

        // Rebuild any missing parity shards from the (now complete) data.
        for p in 0..self.parity_shards {
            let idx = self.data_shards + p;
            if shards[idx].is_some() {
                continue;
            }
            let row = self.encode_matrix.row(idx);
            let mut out = workspace.take_buffer(len);
            for d in 0..self.data_shards {
                let shard = shards[d].as_deref().expect("data shard recovered");
                gf256::mul_add_slice(&mut out, shard, row[d]);
            }
            shards[idx] = Some(out);
        }
        Ok(())
    }

    /// Checks that the parity shards are consistent with the data shards.
    ///
    /// # Errors
    ///
    /// Returns the same geometry errors as [`ReedSolomon::encode`].
    pub fn verify<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<bool, RsError> {
        if shards.len() != self.total_shards() {
            return Err(RsError::WrongShardCount {
                provided: shards.len(),
                expected: self.total_shards(),
            });
        }
        let data = &shards[..self.data_shards];
        let expected = self.encode(data)?;
        Ok(expected
            .iter()
            .zip(&shards[self.data_shards..])
            .all(|(e, s)| e.as_slice() == s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn make_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn geometry_validation() {
        assert!(ReedSolomon::new(0, 1).is_none());
        assert!(ReedSolomon::new(1, 0).is_none());
        assert!(ReedSolomon::new(200, 57).is_none());
        let rs = ReedSolomon::new(101, 9).unwrap();
        assert_eq!(rs.data_shards(), 101);
        assert_eq!(rs.parity_shards(), 9);
        assert_eq!(rs.total_shards(), 110);
    }

    #[test]
    fn encode_rejects_bad_input() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        assert_eq!(
            rs.encode(&[vec![1u8, 2]]).unwrap_err(),
            RsError::WrongShardCount {
                provided: 1,
                expected: 3
            }
        );
        assert_eq!(
            rs.encode(&[vec![1u8, 2], vec![3], vec![4, 5]]).unwrap_err(),
            RsError::ShardLengthMismatch
        );
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = make_data(4, 64, 1);
        let parity = rs.encode(&data).unwrap();
        let mut all: Vec<Vec<u8>> = data.clone();
        all.extend(parity);
        assert!(rs.verify(&all).unwrap());
        all[5][0] ^= 0xFF;
        assert!(!rs.verify(&all).unwrap());
        assert!(rs.verify(&all[..5]).is_err());
    }

    #[test]
    fn reconstruct_with_no_losses_is_noop() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = make_data(3, 16, 2);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.iter().cloned())
            .map(Some)
            .collect();
        let before = shards.clone();
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards, before);
    }

    #[test]
    fn reconstruct_errors() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let mut too_few = vec![None, None, None, None];
        assert!(matches!(
            rs.reconstruct(&mut too_few).unwrap_err(),
            RsError::WrongShardCount { .. }
        ));
        let mut missing = vec![Some(vec![1u8]), None, None, None, None];
        assert!(matches!(
            rs.reconstruct(&mut missing).unwrap_err(),
            RsError::NotEnoughShards {
                present: 1,
                required: 3
            }
        ));
        let mut mismatched = vec![
            Some(vec![1u8, 2]),
            Some(vec![1u8]),
            Some(vec![1u8, 2]),
            None,
            None,
        ];
        assert_eq!(
            rs.reconstruct(&mut mismatched).unwrap_err(),
            RsError::ShardLengthMismatch
        );
    }

    #[test]
    fn recovers_up_to_m_losses_in_paper_geometry() {
        // The paper's window: 101 data + 9 parity, 1316-byte packets
        // (shortened here to keep the test fast but same shard counts).
        let rs = ReedSolomon::new(101, 9).unwrap();
        let data = make_data(101, 32, 3);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.iter().cloned())
            .map(Some)
            .collect();
        // Drop 9 shards: 5 data + 4 parity.
        for &i in &[0, 13, 50, 87, 100, 101, 104, 107, 109] {
            shards[i] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "data shard {i}");
        }
        // One more loss than parity shards must fail.
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.iter().cloned())
            .map(Some)
            .collect();
        for i in 0..10 {
            shards[i * 10] = None;
        }
        assert!(matches!(
            rs.reconstruct(&mut shards).unwrap_err(),
            RsError::NotEnoughShards { .. }
        ));
    }

    #[test]
    fn workspace_reconstruction_matches_plain_reconstruction() {
        let rs = ReedSolomon::new(8, 4).unwrap();
        let data = make_data(8, 48, 11);
        let parity = rs.encode(&data).unwrap();
        let mut ws = DecodeWorkspace::new();
        for round in 0..6u64 {
            let mut with_ws: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .chain(parity.iter().cloned())
                .map(Some)
                .collect();
            let mut plain = with_ws.clone();
            // A loss pattern that varies per round.
            for k in 0..4usize {
                let idx = ((round as usize) * 3 + k * 2) % 12;
                with_ws[idx] = None;
                plain[idx] = None;
            }
            rs.reconstruct_with(&mut with_ws, &mut ws).unwrap();
            rs.reconstruct(&mut plain).unwrap();
            assert_eq!(with_ws, plain, "round {round}");
        }
        assert!(ws.cached_inverses() >= 1);
    }

    #[test]
    fn workspace_caches_one_inverse_per_erasure_pattern() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = make_data(5, 16, 21);
        let parity = rs.encode(&data).unwrap();
        let mut ws = DecodeWorkspace::new();
        let run = |ws: &mut DecodeWorkspace, missing: &[usize]| {
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .chain(parity.iter().cloned())
                .map(Some)
                .collect();
            for &m in missing {
                shards[m] = None;
            }
            rs.reconstruct_with(&mut shards, ws).unwrap();
            for (i, d) in data.iter().enumerate() {
                assert_eq!(shards[i].as_ref().unwrap(), d);
            }
        };
        run(&mut ws, &[0, 1]);
        run(&mut ws, &[0, 1]);
        run(&mut ws, &[0, 1]);
        assert_eq!(
            ws.cached_inverses(),
            1,
            "repeated pattern shares an inverse"
        );
        run(&mut ws, &[2, 6]);
        assert_eq!(ws.cached_inverses(), 2);
    }

    #[test]
    fn workspace_survives_geometry_changes() {
        let mut ws = DecodeWorkspace::new();
        for (k, m) in [(4usize, 2usize), (6, 3), (4, 2)] {
            let rs = ReedSolomon::new(k, m).unwrap();
            let data = make_data(k, 24, (k * 31 + m) as u64);
            let parity = rs.encode(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .chain(parity.iter().cloned())
                .map(Some)
                .collect();
            shards[0] = None;
            shards[k] = None;
            rs.reconstruct_with(&mut shards, &mut ws).unwrap();
            for (i, d) in data.iter().enumerate() {
                assert_eq!(shards[i].as_ref().unwrap(), d, "k={k} m={m}");
            }
            // The cache never mixes inverses across geometries.
            assert_eq!(ws.cached_inverses(), 1);
        }
    }

    #[test]
    fn workspace_recycles_buffers() {
        let mut ws = DecodeWorkspace::new();
        ws.recycle(vec![1, 2, 3]);
        ws.recycle(Vec::new());
        assert_eq!(ws.pooled_buffers(), 2);
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = make_data(3, 8, 5);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.iter().cloned())
            .map(Some)
            .collect();
        shards[1] = None;
        shards[4] = None;
        rs.reconstruct_with(&mut shards, &mut ws).unwrap();
        assert_eq!(shards[1].as_ref().unwrap(), &data[1]);
        assert_eq!(ws.pooled_buffers(), 0, "pooled buffers were consumed");
        assert!(rs
            .verify(&shards.into_iter().map(|s| s.unwrap()).collect::<Vec<_>>())
            .unwrap());
    }

    #[test]
    fn workspace_reconstruct_builds_and_caches_the_codec() {
        let mut ws = DecodeWorkspace::new();
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = make_data(4, 12, 9);
        let parity = rs.encode(&data).unwrap();
        for _ in 0..3 {
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .chain(parity.iter().cloned())
                .map(Some)
                .collect();
            shards[2] = None;
            ws.reconstruct(4, 2, &mut shards).unwrap();
            assert_eq!(shards[2].as_ref().unwrap(), &data[2]);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = RsError::NotEnoughShards {
            present: 3,
            required: 5,
        };
        assert!(e.to_string().contains("3 present"));
        let e = RsError::WrongShardCount {
            provided: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("1 provided"));
        assert!(RsError::ShardLengthMismatch.to_string().contains("length"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Round-trip: encode, erase any ≤ m shards, reconstruct, compare.
        #[test]
        fn encode_erase_reconstruct_roundtrip(
            k in 1usize..12,
            m in 1usize..6,
            len in 1usize..40,
            seed in 0u64..10_000,
        ) {
            let rs = ReedSolomon::new(k, m).unwrap();
            let data = make_data(k, len, seed);
            let parity = rs.encode(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> =
                data.iter().cloned().chain(parity.iter().cloned()).map(Some).collect();

            // Erase a random subset of at most m shards.
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
            let mut idx: Vec<usize> = (0..k + m).collect();
            idx.shuffle(&mut rng);
            let erasures = rng.gen_range(0..=m);
            for &i in idx.iter().take(erasures) {
                shards[i] = None;
            }

            rs.reconstruct(&mut shards).unwrap();
            for (i, d) in data.iter().enumerate() {
                prop_assert_eq!(shards[i].as_ref().unwrap(), d);
            }
            // Parity shards are also rebuilt consistently.
            let all: Vec<Vec<u8>> = shards.into_iter().map(|s| s.unwrap()).collect();
            prop_assert!(rs.verify(&all).unwrap());
        }

        /// Parity is deterministic: encoding the same data twice gives the
        /// same parity shards.
        #[test]
        fn encoding_is_deterministic(seed in 0u64..10_000) {
            let rs = ReedSolomon::new(7, 3).unwrap();
            let data = make_data(7, 24, seed);
            prop_assert_eq!(rs.encode(&data).unwrap(), rs.encode(&data).unwrap());
        }
    }
}
