//! Dense matrices over GF(2⁸) with Gauss–Jordan inversion.
//!
//! Only the handful of operations Reed–Solomon construction needs are
//! provided: multiplication, identity/Vandermonde constructors, row
//! selection and inversion.

use crate::gf256;
use std::fmt;

/// A dense row-major matrix over GF(2⁸).
///
/// # Examples
///
/// ```
/// use heap_fec::matrix::Matrix;
/// let id = Matrix::identity(3);
/// let v = Matrix::vandermonde(3, 3);
/// let prod = v.multiply(&id);
/// assert_eq!(prod, v);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a `rows`×`cols` Vandermonde matrix with entry `(r, c) = r^c`
    /// evaluated in GF(2⁸). Any `cols` rows of such a matrix are linearly
    /// independent as long as `rows ≤ 256`.
    ///
    /// # Panics
    ///
    /// Panics if `rows > 256` (row indices would repeat in GF(2⁸)).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= 256,
            "a GF(256) Vandermonde matrix supports at most 256 rows"
        );
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c as u32));
            }
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    pub fn from_rows(rows: Vec<Vec<u8>>) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let n_rows = rows.len();
        let data = rows.into_iter().flatten().collect();
        Matrix {
            rows: n_rows,
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The entry at (`r`, `c`).
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Sets the entry at (`r`, `c`).
    pub fn set(&mut self, r: usize, c: usize, value: u8) {
        self.data[r * self.cols + c] = value;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        Matrix::from_rows(indices.iter().map(|&i| self.row(i).to_vec()).collect())
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must match for multiplication"
        );
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let prod = gf256::mul(a, rhs.get(k, c));
                    out.set(r, c, gf256::add(out.get(r, c), prod));
                }
            }
        }
        out
    }

    /// Inverts a square matrix by Gauss–Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn invert(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot.
            let pivot_row = (col..n).find(|&r| work.get(r, col) != 0)?;
            if pivot_row != col {
                work.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            // Normalise the pivot row.
            let pivot = work.get(col, col);
            let pivot_inv = gf256::inv(pivot);
            work.scale_row(col, pivot_inv);
            inv.scale_row(col, pivot_inv);
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work.get(r, col);
                if factor != 0 {
                    work.add_scaled_row(r, col, factor);
                    inv.add_scaled_row(r, col, factor);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let tmp = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, tmp);
        }
    }

    fn scale_row(&mut self, r: usize, factor: u8) {
        let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
        gf256::mul_slice(row, factor);
    }

    /// row[target] ^= factor * row[source]
    fn add_scaled_row(&mut self, target: usize, source: usize, factor: u8) {
        let src: Vec<u8> = self.row(source).to_vec();
        let dst = &mut self.data[target * self.cols..(target + 1) * self.cols];
        gf256::mul_add_slice(dst, &src, factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_multiplication_is_neutral() {
        let v = Matrix::vandermonde(5, 3);
        let id3 = Matrix::identity(3);
        assert_eq!(v.multiply(&id3), v);
        let id5 = Matrix::identity(5);
        assert_eq!(id5.multiply(&v), v);
    }

    #[test]
    fn vandermonde_shape_and_values() {
        let v = Matrix::vandermonde(4, 3);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.cols(), 3);
        // Row r is [1, r, r^2].
        assert_eq!(v.row(0), &[1, 0, 0]);
        assert_eq!(v.row(1), &[1, 1, 1]);
        assert_eq!(v.row(2), &[1, 2, 4]);
        assert_eq!(v.row(3), &[1, 3, 5]); // 3*3 = 5 in GF(256)
    }

    #[test]
    fn invert_identity_is_identity() {
        let id = Matrix::identity(6);
        assert_eq!(id.invert().unwrap(), id);
    }

    #[test]
    fn invert_square_vandermonde_roundtrips() {
        for n in 1..=12 {
            // Rows 1.. to avoid the all-[1,0,0,...] row pattern degenerating; any
            // distinct evaluation points give an invertible square Vandermonde.
            let v = Matrix::vandermonde(n, n);
            let inv = v.invert().expect("square Vandermonde must be invertible");
            assert_eq!(v.multiply(&inv), Matrix::identity(n), "n={n}");
            assert_eq!(inv.multiply(&v), Matrix::identity(n), "n={n}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        assert!(m.invert().is_none());
        let zero = Matrix::zero(3, 3);
        assert!(zero.invert().is_none());
    }

    #[test]
    fn select_rows_picks_in_order() {
        let v = Matrix::vandermonde(5, 2);
        let sel = v.select_rows(&[4, 0]);
        assert_eq!(sel.rows(), 2);
        assert_eq!(sel.row(0), v.row(4));
        assert_eq!(sel.row(1), v.row(0));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        let _ = Matrix::zero(0, 3);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(vec![vec![1, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_multiply_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.multiply(&b);
    }

    #[test]
    fn debug_output_mentions_shape() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("2x2"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any square matrix built from distinct Vandermonde rows is invertible
        /// and its inverse actually inverts it.
        #[test]
        fn random_vandermonde_row_subsets_invert(
            n in 2usize..8,
            seed in 0u64..1000,
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let big = Matrix::vandermonde(40, n);
            let mut indices: Vec<usize> = (0..40).collect();
            indices.shuffle(&mut rng);
            indices.truncate(n);
            let sub = big.select_rows(&indices);
            let inv = sub.invert().expect("distinct Vandermonde rows are independent");
            prop_assert_eq!(sub.multiply(&inv), Matrix::identity(n));
        }

        /// (A * B)⁻¹ = B⁻¹ * A⁻¹ for random invertible matrices.
        #[test]
        fn product_inverse_rule(seed in 0u64..500) {
            use rand::Rng;
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = 4;
            // Random matrices are invertible with probability ~0.996 over GF(256);
            // retry until both are.
            let mut random_invertible = || loop {
                let rows: Vec<Vec<u8>> = (0..n)
                    .map(|_| (0..n).map(|_| rng.gen()).collect())
                    .collect();
                let m = Matrix::from_rows(rows);
                if let Some(inv) = m.invert() {
                    return (m, inv);
                }
            };
            let (a, a_inv) = random_invertible();
            let (b, b_inv) = random_invertible();
            let ab = a.multiply(&b);
            let ab_inv = ab.invert().unwrap();
            prop_assert_eq!(ab_inv, b_inv.multiply(&a_inv));
        }
    }
}
