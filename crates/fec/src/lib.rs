//! # heap-fec
//!
//! Systematic forward-error-correction substrate for the HEAP reproduction.
//!
//! The paper's streaming application groups the stream into FEC-encoded
//! windows of **101 source packets plus 9 parity packets** (systematic
//! coding): a window can be fully decoded from *any* 101 of its 110 packets,
//! and because the code is systematic a window that cannot be decoded still
//! yields every source packet that was received verbatim.
//!
//! The crate implements that scheme from scratch:
//!
//! * [`gf256`] — arithmetic over GF(2⁸) with the primitive polynomial
//!   `x⁸+x⁴+x³+x²+1` (0x11D),
//! * [`matrix`] — dense matrices over GF(2⁸) with Gauss–Jordan inversion,
//! * [`rs`] — a systematic Reed–Solomon erasure code built from a
//!   Vandermonde matrix,
//! * [`window`] — the 101+9 window codec used by `heap-streaming`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod gf256;
pub mod matrix;
pub mod rs;
pub mod window;

pub use rs::{DecodeWorkspace, ReedSolomon, RsError};
pub use window::{WindowDecoder, WindowEncoder, WindowParams};
