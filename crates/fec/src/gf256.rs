//! Arithmetic over the finite field GF(2⁸).
//!
//! Addition and subtraction are XOR; multiplication and division go through
//! exp/log tables built over the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11D) with generator α = 2, the conventional
//! choice for Reed–Solomon erasure codes.

use std::sync::OnceLock;

/// The primitive polynomial used to reduce products, expressed with the x⁸
/// term included (0x11D).
pub const PRIMITIVE_POLY: u16 = 0x11D;

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        // Duplicate the table so exp[a + b] never needs a modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Adds two field elements (XOR).
///
/// # Examples
///
/// ```
/// assert_eq!(heap_fec::gf256::add(0x53, 0xCA), 0x99);
/// ```
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts two field elements (identical to [`add`] in characteristic 2).
#[inline]
pub fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// # Examples
///
/// ```
/// use heap_fec::gf256::mul;
/// assert_eq!(mul(0, 123), 0);
/// assert_eq!(mul(1, 123), 123);
/// assert_eq!(mul(2, 0x80), 0x1D); // wraps through the primitive polynomial
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    let idx = t.log[a as usize] as usize + t.log[b as usize] as usize;
    t.exp[idx]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b` is zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let idx = 255 + t.log[a as usize] as usize - t.log[b as usize] as usize;
    t.exp[idx]
}

/// The multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a` is zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// Raises `a` to the power `n`.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let log_a = t.log[a as usize] as u64;
    let idx = (log_a * n as u64) % 255;
    t.exp[idx as usize]
}

/// Computes `dst[i] ^= c * src[i]` for every element — the inner loop of both
/// Reed–Solomon encoding and decoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[log_c + t.log[*s as usize] as usize];
        }
    }
}

/// Multiplies every element of `data` by `c` in place.
pub fn mul_slice(data: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        data.fill(0);
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize] as usize;
    for d in data.iter_mut() {
        if *d != 0 {
            *d = t.exp[log_c + t.log[*d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        assert_eq!(add(0xAB, 0xAB), 0);
        assert_eq!(sub(0xAB, 0), 0xAB);
        for a in 0..=255u8 {
            assert_eq!(add(a, 0), a);
            assert_eq!(sub(add(a, 0x5C), 0x5C), a);
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = div(3, 0);
    }

    #[test]
    fn known_multiplication_values() {
        // Values checked against the standard 0x11D tables.
        assert_eq!(mul(2, 0x80), 0x1D);
        assert_eq!(pow(2, 8), 0x1D);
        assert_eq!(pow(2, 255), 1);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(7, 0), 1);
    }

    #[test]
    fn mul_add_slice_matches_scalar_ops() {
        let src = [1u8, 2, 3, 250, 0, 77];
        let mut dst = [9u8, 8, 7, 6, 5, 4];
        let expected: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(&d, &s)| add(d, mul(0x35, s)))
            .collect();
        mul_add_slice(&mut dst, &src, 0x35);
        assert_eq!(dst.to_vec(), expected);
    }

    #[test]
    fn mul_add_slice_special_coefficients() {
        let src = [5u8, 6, 7];
        let mut dst = [1u8, 2, 3];
        mul_add_slice(&mut dst, &src, 0);
        assert_eq!(dst, [1, 2, 3]);
        mul_add_slice(&mut dst, &src, 1);
        assert_eq!(dst, [4, 4, 4]);
    }

    #[test]
    fn mul_slice_scales_in_place() {
        let mut data = [0u8, 1, 2, 3];
        mul_slice(&mut data, 1);
        assert_eq!(data, [0, 1, 2, 3]);
        mul_slice(&mut data, 2);
        assert_eq!(data, [0, 2, 4, 6]);
        mul_slice(&mut data, 0);
        assert_eq!(data, [0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_add_slice_length_mismatch_panics() {
        let mut dst = [0u8; 3];
        mul_add_slice(&mut dst, &[0u8; 4], 2);
    }

    proptest! {
        #[test]
        fn mul_is_commutative_and_associative(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn mul_distributes_over_add(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        #[test]
        fn division_inverts_multiplication(a: u8, b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }

        #[test]
        fn pow_adds_exponents(a in 1u8..=255, m in 0u32..16, n in 0u32..16) {
            prop_assert_eq!(mul(pow(a, m), pow(a, n)), pow(a, m + n));
        }
    }
}
