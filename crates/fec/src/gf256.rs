//! Arithmetic over the finite field GF(2⁸).
//!
//! Addition and subtraction are XOR; multiplication and division go through
//! exp/log tables built over the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11D) with generator α = 2, the conventional
//! choice for Reed–Solomon erasure codes.
//!
//! # FEC kernel design
//!
//! The Reed–Solomon inner loop — [`mul_add_slice`], `dst[i] ^= c · src[i]` —
//! is where an erasure-coding stack spends essentially all of its CPU, so it
//! does **not** use the exp/log tables. A log/exp kernel performs two
//! dependent table loads per byte plus a branch on `src[i] == 0`; the loads
//! hit a 768-byte table and serialise on the address computation.
//!
//! Instead the kernel is *table-blocked*: because multiplication by a fixed
//! `c` is GF(2)-linear, `c · x == c · (x & 0x0F) ⊕ c · (x & 0xF0)`, so two
//! 16-entry tables (one per nibble, built once per call from the log/exp
//! tables — 30 lookups, amortised over the whole slice) replace the per-byte
//! log/exp chain. This is the portable-Rust equivalent of the `PSHUFB`
//! split-nibble trick used by ISA-L and `reed-solomon-erasure`'s SIMD paths:
//! on x86-64 the kernel *is* that trick. Three tiers are selected once at
//! runtime (`is_x86_feature_detected!`), all consuming the same two nibble
//! tables:
//!
//! * **AVX2** — `VPSHUFB` performs 32 parallel nibble lookups per
//!   instruction; 32 bytes per load/shuffle/shuffle/XOR/XOR/store.
//! * **SSSE3** — the 16-byte `PSHUFB` variant of the same loop.
//! * **Portable** — 8-byte `u64` chunks with eight independent scalar
//!   nibble lookups per chunk (no carried dependency, no branches), used on
//!   non-x86 targets and as the tail handler for the SIMD tiers.
//!
//! The scalar reference kernels are kept as
//! [`mul_add_slice_scalar`]/[`mul_slice_scalar`] and the test suite checks
//! the blocked kernel against them exhaustively for every coefficient
//! `c in 0..=255` on unaligned lengths, so every tier is proven
//! bit-identical to the log/exp semantics.

use std::sync::OnceLock;

/// The primitive polynomial used to reduce products, expressed with the x⁸
/// term included (0x11D).
pub const PRIMITIVE_POLY: u16 = 0x11D;

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, slot) in exp.iter_mut().enumerate().take(255) {
            *slot = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        // Duplicate the table so exp[a + b] never needs a modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Adds two field elements (XOR).
///
/// # Examples
///
/// ```
/// assert_eq!(heap_fec::gf256::add(0x53, 0xCA), 0x99);
/// ```
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts two field elements (identical to [`add`] in characteristic 2).
#[inline]
pub fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// # Examples
///
/// ```
/// use heap_fec::gf256::mul;
/// assert_eq!(mul(0, 123), 0);
/// assert_eq!(mul(1, 123), 123);
/// assert_eq!(mul(2, 0x80), 0x1D); // wraps through the primitive polynomial
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    let idx = t.log[a as usize] as usize + t.log[b as usize] as usize;
    t.exp[idx]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b` is zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let idx = 255 + t.log[a as usize] as usize - t.log[b as usize] as usize;
    t.exp[idx]
}

/// The multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a` is zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// Raises `a` to the power `n`.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let log_a = t.log[a as usize] as u64;
    let idx = (log_a * n as u64) % 255;
    t.exp[idx as usize]
}

/// The split-nibble multiplication tables for a fixed coefficient `c`:
/// `lo[x] = c · x` for the low nibble and `hi[x] = c · (x << 4)` for the
/// high nibble, so `c · b = lo[b & 0x0F] ^ hi[b >> 4]`.
#[inline]
fn nibble_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let t = tables();
    let log_c = t.log[c as usize] as usize;
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for x in 1..16usize {
        lo[x] = t.exp[log_c + t.log[x] as usize];
        hi[x] = t.exp[log_c + t.log[x << 4] as usize];
    }
    (lo, hi)
}

/// `dst[i] ^= src[i]`, processed in 8-byte `u64` chunks.
#[inline]
fn xor_slice(dst: &mut [u8], src: &[u8]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let dv = u64::from_le_bytes((&*dc).try_into().expect("8-byte chunk"));
        let sv = u64::from_le_bytes(sc.try_into().expect("8-byte chunk"));
        dc.copy_from_slice(&(dv ^ sv).to_le_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

/// The kernel tier selected for this process (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kernel {
    Portable,
    #[cfg(target_arch = "x86_64")]
    Ssse3,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

fn kernel() -> Kernel {
    static KERNEL: OnceLock<Kernel> = OnceLock::new();
    *KERNEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                return Kernel::Ssse3;
            }
        }
        Kernel::Portable
    })
}

/// The name of the slice-kernel tier in use, for benchmark reports.
pub fn kernel_name() -> &'static str {
    match kernel() {
        Kernel::Portable => "portable-u64",
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => "ssse3-pshufb",
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => "avx2-vpshufb",
    }
}

/// Computes `dst[i] ^= c * src[i]` for every element — the inner loop of both
/// Reed–Solomon encoding and decoding.
///
/// Uses the table-blocked kernel described in the module docs; semantically
/// identical to [`mul_add_slice_scalar`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(dst, src);
        return;
    }
    let (lo, hi) = nibble_tables(c);
    match kernel() {
        // SAFETY: the feature was detected at runtime by `kernel()`.
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { mul_add_avx2(dst, src, &lo, &hi) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => unsafe { mul_add_ssse3(dst, src, &lo, &hi) },
        Kernel::Portable => mul_add_portable(dst, src, &lo, &hi),
    }
}

/// Multiplies every element of `data` by `c` in place.
///
/// Uses the same table-blocked kernel as [`mul_add_slice`]; semantically
/// identical to [`mul_slice_scalar`].
pub fn mul_slice(data: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        data.fill(0);
        return;
    }
    let (lo, hi) = nibble_tables(c);
    match kernel() {
        // SAFETY: the feature was detected at runtime by `kernel()`.
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { mul_avx2(data, &lo, &hi) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => unsafe { mul_ssse3(data, &lo, &hi) },
        Kernel::Portable => mul_portable(data, &lo, &hi),
    }
}

/// Portable tier: 8-byte `u64` chunks, eight independent nibble lookups per
/// chunk, scalar tail. Also finishes the sub-chunk tail of the SIMD tiers.
fn mul_add_portable(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let sv = u64::from_le_bytes(sc.try_into().expect("8-byte chunk"));
        let dv = u64::from_le_bytes((&*dc).try_into().expect("8-byte chunk"));
        let mut prod = [0u8; 8];
        for (i, p) in prod.iter_mut().enumerate() {
            let b = (sv >> (8 * i)) as u8;
            *p = lo[(b & 0x0F) as usize] ^ hi[(b >> 4) as usize];
        }
        dc.copy_from_slice(&(dv ^ u64::from_le_bytes(prod)).to_le_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= lo[(sb & 0x0F) as usize] ^ hi[(sb >> 4) as usize];
    }
}

fn mul_portable(data: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
    let mut d = data.chunks_exact_mut(8);
    for dc in &mut d {
        let dv = u64::from_le_bytes((&*dc).try_into().expect("8-byte chunk"));
        let mut prod = [0u8; 8];
        for (i, p) in prod.iter_mut().enumerate() {
            let b = (dv >> (8 * i)) as u8;
            *p = lo[(b & 0x0F) as usize] ^ hi[(b >> 4) as usize];
        }
        dc.copy_from_slice(&prod);
    }
    for db in d.into_remainder().iter_mut() {
        *db = lo[(*db & 0x0F) as usize] ^ hi[(*db >> 4) as usize];
    }
}

/// AVX2 tier: `VPSHUFB` does 32 nibble lookups per instruction, so each
/// 32-byte chunk costs two loads, two shuffles, two XORs and one store.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_add_avx2(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
    use std::arch::x86_64::*;
    let lo_v = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
    let hi_v = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
    let mask = _mm256_set1_epi8(0x0F);
    let chunks = dst.len() / 32;
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    for k in 0..chunks {
        let s = _mm256_loadu_si256(sp.add(k * 32).cast());
        let d = _mm256_loadu_si256(dp.add(k * 32).cast());
        let lo_idx = _mm256_and_si256(s, mask);
        let hi_idx = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
        let prod = _mm256_xor_si256(
            _mm256_shuffle_epi8(lo_v, lo_idx),
            _mm256_shuffle_epi8(hi_v, hi_idx),
        );
        _mm256_storeu_si256(dp.add(k * 32).cast(), _mm256_xor_si256(d, prod));
    }
    let done = chunks * 32;
    mul_add_portable(&mut dst[done..], &src[done..], lo, hi);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_avx2(data: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
    use std::arch::x86_64::*;
    let lo_v = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
    let hi_v = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
    let mask = _mm256_set1_epi8(0x0F);
    let chunks = data.len() / 32;
    let dp = data.as_mut_ptr();
    for k in 0..chunks {
        let d = _mm256_loadu_si256(dp.add(k * 32).cast());
        let lo_idx = _mm256_and_si256(d, mask);
        let hi_idx = _mm256_and_si256(_mm256_srli_epi64::<4>(d), mask);
        let prod = _mm256_xor_si256(
            _mm256_shuffle_epi8(lo_v, lo_idx),
            _mm256_shuffle_epi8(hi_v, hi_idx),
        );
        _mm256_storeu_si256(dp.add(k * 32).cast(), prod);
    }
    let done = chunks * 32;
    mul_portable(&mut data[done..], lo, hi);
}

/// SSSE3 tier: the 16-byte `PSHUFB` variant of the AVX2 loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn mul_add_ssse3(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
    use std::arch::x86_64::*;
    let lo_v = _mm_loadu_si128(lo.as_ptr().cast());
    let hi_v = _mm_loadu_si128(hi.as_ptr().cast());
    let mask = _mm_set1_epi8(0x0F);
    let chunks = dst.len() / 16;
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    for k in 0..chunks {
        let s = _mm_loadu_si128(sp.add(k * 16).cast());
        let d = _mm_loadu_si128(dp.add(k * 16).cast());
        let lo_idx = _mm_and_si128(s, mask);
        let hi_idx = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
        let prod = _mm_xor_si128(
            _mm_shuffle_epi8(lo_v, lo_idx),
            _mm_shuffle_epi8(hi_v, hi_idx),
        );
        _mm_storeu_si128(dp.add(k * 16).cast(), _mm_xor_si128(d, prod));
    }
    let done = chunks * 16;
    mul_add_portable(&mut dst[done..], &src[done..], lo, hi);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn mul_ssse3(data: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
    use std::arch::x86_64::*;
    let lo_v = _mm_loadu_si128(lo.as_ptr().cast());
    let hi_v = _mm_loadu_si128(hi.as_ptr().cast());
    let mask = _mm_set1_epi8(0x0F);
    let chunks = data.len() / 16;
    let dp = data.as_mut_ptr();
    for k in 0..chunks {
        let d = _mm_loadu_si128(dp.add(k * 16).cast());
        let lo_idx = _mm_and_si128(d, mask);
        let hi_idx = _mm_and_si128(_mm_srli_epi64::<4>(d), mask);
        let prod = _mm_xor_si128(
            _mm_shuffle_epi8(lo_v, lo_idx),
            _mm_shuffle_epi8(hi_v, hi_idx),
        );
        _mm_storeu_si128(dp.add(k * 16).cast(), prod);
    }
    let done = chunks * 16;
    mul_portable(&mut data[done..], lo, hi);
}

/// The per-byte log/exp reference implementation of [`mul_add_slice`].
///
/// Kept as the ground truth the blocked kernel is tested against (and as a
/// readable statement of the semantics); not used on the hot path.
pub fn mul_add_slice_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[log_c + t.log[*s as usize] as usize];
        }
    }
}

/// The per-byte log/exp reference implementation of [`mul_slice`].
pub fn mul_slice_scalar(data: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        data.fill(0);
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize] as usize;
    for d in data.iter_mut() {
        if *d != 0 {
            *d = t.exp[log_c + t.log[*d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        assert_eq!(add(0xAB, 0xAB), 0);
        assert_eq!(sub(0xAB, 0), 0xAB);
        for a in 0..=255u8 {
            assert_eq!(add(a, 0), a);
            assert_eq!(sub(add(a, 0x5C), 0x5C), a);
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = div(3, 0);
    }

    #[test]
    fn known_multiplication_values() {
        // Values checked against the standard 0x11D tables.
        assert_eq!(mul(2, 0x80), 0x1D);
        assert_eq!(pow(2, 8), 0x1D);
        assert_eq!(pow(2, 255), 1);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(7, 0), 1);
    }

    #[test]
    fn nibble_tables_cover_every_product() {
        for c in 0..=255u8 {
            if c == 0 {
                continue;
            }
            let (lo, hi) = nibble_tables(c);
            for b in 0..=255u8 {
                assert_eq!(
                    lo[(b & 0x0F) as usize] ^ hi[(b >> 4) as usize],
                    mul(c, b),
                    "c={c} b={b}"
                );
            }
        }
    }

    /// The blocked kernel must agree with the scalar reference for *every*
    /// coefficient and for lengths that exercise both the `u64` body and the
    /// scalar tail (1..64 covers all `len % 8` residues several times over).
    #[test]
    fn blocked_mul_add_matches_scalar_exhaustively() {
        let src: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        let base: Vec<u8> = (0..64u32).map(|i| (i * 101 + 3) as u8).collect();
        for c in 0..=255u8 {
            for len in 1..=64usize {
                let mut fast = base[..len].to_vec();
                let mut slow = base[..len].to_vec();
                mul_add_slice(&mut fast, &src[..len], c);
                mul_add_slice_scalar(&mut slow, &src[..len], c);
                assert_eq!(fast, slow, "mul_add c={c} len={len}");
            }
        }
    }

    #[test]
    fn blocked_mul_slice_matches_scalar_exhaustively() {
        let base: Vec<u8> = (0..64u32).map(|i| (i * 59 + 7) as u8).collect();
        for c in 0..=255u8 {
            for len in 1..=64usize {
                let mut fast = base[..len].to_vec();
                let mut slow = base[..len].to_vec();
                mul_slice(&mut fast, c);
                mul_slice_scalar(&mut slow, c);
                assert_eq!(fast, slow, "mul c={c} len={len}");
            }
        }
    }

    /// Unaligned starting offsets (sub-slices of a larger buffer) must not
    /// change the result — the kernel only assumes byte alignment.
    #[test]
    fn blocked_kernel_is_offset_independent() {
        let src: Vec<u8> = (0..80u32).map(|i| (i * 13 + 5) as u8).collect();
        let base: Vec<u8> = (0..80u32).map(|i| (i * 29 + 1) as u8).collect();
        for offset in 0..8usize {
            for c in [2u8, 0x35, 0x8E, 0xFF] {
                let len = 41;
                let mut fast = base[offset..offset + len].to_vec();
                let mut slow = fast.clone();
                mul_add_slice(&mut fast, &src[offset..offset + len], c);
                mul_add_slice_scalar(&mut slow, &src[offset..offset + len], c);
                assert_eq!(fast, slow, "offset={offset} c={c}");
            }
        }
    }

    /// Every tier available on this machine — not just the one `kernel()`
    /// picks — must match the scalar reference.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn all_simd_tiers_match_scalar() {
        let lens = [1usize, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 100];
        let src: Vec<u8> = (0..100u32).map(|i| (i * 41 + 17) as u8).collect();
        let base: Vec<u8> = (0..100u32).map(|i| (i * 89 + 5) as u8).collect();
        for c in (0..=255u8).step_by(7).chain([255]) {
            if c == 0 || c == 1 {
                continue;
            }
            let (lo, hi) = nibble_tables(c);
            for &len in &lens {
                let mut expect = base[..len].to_vec();
                mul_add_slice_scalar(&mut expect, &src[..len], c);
                let mut portable = base[..len].to_vec();
                mul_add_portable(&mut portable, &src[..len], &lo, &hi);
                assert_eq!(portable, expect, "portable c={c} len={len}");
                if std::arch::is_x86_feature_detected!("ssse3") {
                    let mut v = base[..len].to_vec();
                    // SAFETY: feature detected above.
                    unsafe { mul_add_ssse3(&mut v, &src[..len], &lo, &hi) };
                    assert_eq!(v, expect, "ssse3 c={c} len={len}");
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut v = base[..len].to_vec();
                    // SAFETY: feature detected above.
                    unsafe { mul_add_avx2(&mut v, &src[..len], &lo, &hi) };
                    assert_eq!(v, expect, "avx2 c={c} len={len}");
                }

                let mut expect = base[..len].to_vec();
                mul_slice_scalar(&mut expect, c);
                let mut portable = base[..len].to_vec();
                mul_portable(&mut portable, &lo, &hi);
                assert_eq!(portable, expect, "mul portable c={c} len={len}");
                if std::arch::is_x86_feature_detected!("ssse3") {
                    let mut v = base[..len].to_vec();
                    // SAFETY: feature detected above.
                    unsafe { mul_ssse3(&mut v, &lo, &hi) };
                    assert_eq!(v, expect, "mul ssse3 c={c} len={len}");
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut v = base[..len].to_vec();
                    // SAFETY: feature detected above.
                    unsafe { mul_avx2(&mut v, &lo, &hi) };
                    assert_eq!(v, expect, "mul avx2 c={c} len={len}");
                }
            }
        }
    }

    #[test]
    fn kernel_name_is_reported() {
        let name = kernel_name();
        assert!(["portable-u64", "ssse3-pshufb", "avx2-vpshufb"].contains(&name));
    }

    #[test]
    fn mul_add_slice_matches_scalar_ops() {
        let src = [1u8, 2, 3, 250, 0, 77];
        let mut dst = [9u8, 8, 7, 6, 5, 4];
        let expected: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(&d, &s)| add(d, mul(0x35, s)))
            .collect();
        mul_add_slice(&mut dst, &src, 0x35);
        assert_eq!(dst.to_vec(), expected);
    }

    #[test]
    fn mul_add_slice_special_coefficients() {
        let src = [5u8, 6, 7];
        let mut dst = [1u8, 2, 3];
        mul_add_slice(&mut dst, &src, 0);
        assert_eq!(dst, [1, 2, 3]);
        mul_add_slice(&mut dst, &src, 1);
        assert_eq!(dst, [4, 4, 4]);
    }

    #[test]
    fn xor_fast_path_handles_long_slices() {
        let src: Vec<u8> = (0..37u32).map(|i| (i * 7) as u8).collect();
        let mut dst: Vec<u8> = (0..37u32).map(|i| (i * 3) as u8).collect();
        let expected: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
        mul_add_slice(&mut dst, &src, 1);
        assert_eq!(dst, expected);
    }

    #[test]
    fn mul_slice_scales_in_place() {
        let mut data = [0u8, 1, 2, 3];
        mul_slice(&mut data, 1);
        assert_eq!(data, [0, 1, 2, 3]);
        mul_slice(&mut data, 2);
        assert_eq!(data, [0, 2, 4, 6]);
        mul_slice(&mut data, 0);
        assert_eq!(data, [0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_add_slice_length_mismatch_panics() {
        let mut dst = [0u8; 3];
        mul_add_slice(&mut dst, &[0u8; 4], 2);
    }

    proptest! {
        #[test]
        fn mul_is_commutative_and_associative(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn mul_distributes_over_add(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        #[test]
        fn division_inverts_multiplication(a: u8, b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }

        #[test]
        fn pow_adds_exponents(a in 1u8..=255, m in 0u32..16, n in 0u32..16) {
            prop_assert_eq!(mul(pow(a, m), pow(a, n)), pow(a, m + n));
        }

        /// Random slices: the blocked kernel equals the scalar reference.
        #[test]
        fn blocked_kernel_matches_scalar_on_random_input(
            c: u8,
            src in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let mut fast = vec![0xA5u8; src.len()];
            let mut slow = fast.clone();
            mul_add_slice(&mut fast, &src, c);
            mul_add_slice_scalar(&mut slow, &src, c);
            prop_assert_eq!(fast, slow);
        }
    }
}
