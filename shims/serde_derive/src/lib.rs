//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace only ever *derives* the serde traits (no code calls
//! `serialize`/`deserialize`), and the in-tree `serde` shim blanket-implements
//! its marker traits for every type — so the derives can expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the serde shim's `Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the serde shim's `Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
