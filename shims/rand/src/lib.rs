//! Minimal, API-compatible stand-in for the subset of the `rand` crate used
//! by this workspace.
//!
//! The build environment has no access to a cargo registry, so the external
//! `rand` dependency is replaced by this in-tree shim (path dependency with
//! the same crate name). It provides:
//!
//! * [`RngCore`], [`Rng`], [`SeedableRng`] traits,
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, deterministic
//!   and portable across platforms,
//! * [`distributions::Standard`] / [`distributions::Distribution`],
//! * uniform range sampling via [`Rng::gen_range`],
//! * [`seq::SliceRandom`] (shuffle / choose / choose_multiple),
//! * a [`prelude`] mirroring `rand::prelude`.
//!
//! The algorithms differ from the real `rand` crate (sequences are NOT
//! bit-compatible with upstream), but every stream is fully deterministic in
//! the seed, which is the property the simulator relies on.

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be deterministically constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`, like the real `rand` crate.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p = {p} is outside [0, 1]"
        );
        self.gen::<f64>() < p
    }

    /// Consumes the RNG into an infinite iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNG implementations.
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++ seeded via SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the 64-bit seed with SplitMix64, as rand does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// Advances the xoshiro256++ recurrence one step without computing
        /// the output word.
        #[inline(always)]
        fn step(&mut self) {
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
        }

        /// Fills `out` with the next `out.len()` draws of this generator —
        /// bit-identical, draw for draw, to calling
        /// [`RngCore::next_u64`] in a loop — using `L`-wide lane blocks.
        ///
        /// The xoshiro256++ *recurrence* is inherently serial (each state is
        /// a function of the previous one), so the lane structure covers the
        /// *output map*: a block gathers the `(s0, s3)` columns of `L`
        /// successive states struct-of-arrays style while stepping the
        /// recurrence, then evaluates the `(s0 + s3) rotl 23 + s0` output
        /// map for all `L` lanes in one pass over the columns — a pure
        /// add/rotate/add kernel the compiler vectorizes 4-wide on AVX2.
        /// Downstream batch samplers run their distribution transforms over
        /// the filled buffer the same way. The sub-block tail falls back to
        /// scalar draws.
        pub fn fill_u64_lanes<const L: usize>(&mut self, out: &mut [u64]) {
            assert!(L >= 1, "need at least one lane");
            let mut chunks = out.chunks_exact_mut(L);
            let mut c0 = [0u64; L];
            let mut c3 = [0u64; L];
            for chunk in &mut chunks {
                for lane in 0..L {
                    c0[lane] = self.s[0];
                    c3[lane] = self.s[3];
                    self.step();
                }
                for lane in 0..L {
                    chunk[lane] = c0[lane]
                        .wrapping_add(c3[lane])
                        .rotate_left(23)
                        .wrapping_add(c0[lane]);
                }
            }
            for slot in chunks.into_remainder() {
                *slot = self.next_u64();
            }
        }

        /// [`SmallRng::fill_u64_lanes`] at the default lane width (8: two
        /// AVX2 vectors of `u64`s per block).
        #[inline]
        pub fn fill_u64(&mut self, out: &mut [u64]) {
            self.fill_u64_lanes::<8>(out);
        }
    }
}

pub mod distributions {
    //! Sampling distributions (the subset the workspace uses).
    use super::RngCore;
    use std::marker::PhantomData;

    /// Types that can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" full-range distribution for primitive types.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Infinite iterator of samples, returned by `Rng::sample_iter`.
    pub struct DistIter<D, R, T> {
        distr: D,
        rng: R,
        _marker: PhantomData<fn() -> T>,
    }

    impl<D, R, T> DistIter<D, R, T> {
        pub(crate) fn new(distr: D, rng: R) -> Self {
            DistIter {
                distr,
                rng,
                _marker: PhantomData,
            }
        }
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    pub mod uniform {
        //! Uniform range sampling used by `Rng::gen_range`.
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types `gen_range` can sample uniformly.
        pub trait SampleUniform: Sized {
            /// Uniform sample from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        let lo_w = lo as i128;
                        let hi_w = hi as i128;
                        // Check before casting: an inverted range would wrap
                        // the u128 cast and silently pass a `span > 0` check.
                        let span_w = hi_w - lo_w + if inclusive { 1 } else { 0 };
                        assert!(span_w > 0, "cannot sample from empty range");
                        let span = span_w as u128;
                        // Modulo bias is negligible for the ranges used here
                        // (all far below 2^64). When the span fits in u64 —
                        // always, except for (near-)full 64-bit ranges — the
                        // reduction is done in u64: `x % span` is the same
                        // value either way, but the u64 form is a single
                        // hardware division instead of a libcall-based u128
                        // one, which matters in the simulator's event loop.
                        let draw = if span <= u64::MAX as u128 {
                            let span = span as u64;
                            if span.is_power_of_two() {
                                // Same value as `% span`, without the divide.
                                (rng.next_u64() & (span - 1)) as u128
                            } else {
                                (rng.next_u64() % span) as u128
                            }
                        } else {
                            rng.next_u64() as u128 % span
                        };
                        (lo_w + draw as i128) as $t
                    }
                }
            )*};
        }
        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        assert!(lo <= hi, "cannot sample from empty range");
                        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        lo + (unit as $t) * (hi - lo)
                    }
                }
            )*};
        }
        impl_sample_uniform_float!(f32, f64);

        /// Range arguments accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(*self.start(), *self.end(), true, rng)
            }
        }
    }
}

pub mod seq {
    //! Random sequence operations.
    use super::{Rng, RngCore};

    /// Random operations on slices: shuffling and element choice.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Up to `amount` distinct elements, in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount.min(self.len()));
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

pub mod prelude {
    //! Mirror of `rand::prelude`.
    pub use super::distributions::Distribution;
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, SeedableRng};

    /// The lane-blocked bulk path must be bit-identical to sequential
    /// `next_u64` draws — for every lane count and every tail length (buffer
    /// lengths sweep 0..3 full blocks plus every possible remainder), and it
    /// must leave the generator in the identical state afterwards.
    #[test]
    fn fill_u64_matches_sequential_for_every_lane_count_and_tail() {
        fn check<const L: usize>() {
            for len in 0..(3 * L + 2) {
                let mut bulk = SmallRng::seed_from_u64(0xF00D + len as u64);
                let mut seq = bulk.clone();
                let mut out = vec![0u64; len];
                bulk.fill_u64_lanes::<L>(&mut out);
                for (i, &got) in out.iter().enumerate() {
                    assert_eq!(got, seq.next_u64(), "lanes={L} len={len} draw={i}");
                }
                // Post-state resync: the next draw from each must agree.
                assert_eq!(bulk.next_u64(), seq.next_u64(), "lanes={L} len={len} state");
            }
        }
        check::<1>();
        check::<2>();
        check::<3>();
        check::<4>();
        check::<5>();
        check::<6>();
        check::<7>();
        check::<8>();
    }

    #[test]
    fn fill_u64_default_width_matches_sequential() {
        let mut bulk = SmallRng::seed_from_u64(42);
        let mut seq = bulk.clone();
        let mut out = vec![0u64; 1021];
        bulk.fill_u64(&mut out);
        for &got in &out {
            assert_eq!(got, seq.next_u64());
        }
    }
}
