//! Minimal, API-compatible stand-in for the subset of `criterion` used by
//! the workspace's benches.
//!
//! The build environment has no access to a cargo registry, so the external
//! `criterion` bench dependency is replaced by this in-tree shim. Benches are
//! declared exactly as with real criterion (`criterion_group!` /
//! `criterion_main!` with `harness = false`).
//!
//! Unlike the first version of the shim (one warm-up pass plus a single mean
//! over a fixed iteration count), measurements are now *sampled*: each
//! benchmark collects `sample_size` independent samples (fast routines are
//! batched per sample so a sample is long enough to time reliably), Tukey
//! fences (1.5 × IQR) reject outlier samples, and the report shows
//! **min / mean ± stddev** of the surviving samples plus throughput
//! (MiB/s or elem/s) computed from the mean. There is still no HTML report
//! and no saved baselines.
//!
//! Environment overrides (used by CI's smoke-bench step to keep the bench
//! targets compiling and running without paying full measurement cost):
//!
//! * `HEAP_BENCH_SAMPLES` — overrides every group's sample count.
//! * `HEAP_BENCH_SAMPLE_MS` — target wall-clock per sample for batchable
//!   routines (default 5 ms).

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost. Ignored by the shim (every
/// iteration gets its own setup), the variants exist for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration (binary units in real criterion).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units in real criterion).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Target wall-clock duration of one sample for batchable routines.
fn target_sample_time() -> Duration {
    Duration::from_millis(env_u64("HEAP_BENCH_SAMPLE_MS").unwrap_or(5))
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: u64,
    /// Per-sample wall-clock time of one routine call, in seconds.
    per_iter: Vec<f64>,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            per_iter: Vec::with_capacity(samples as usize),
        }
    }

    /// Times `routine` over the configured number of samples. Routines much
    /// shorter than the target sample time are batched: a sample times many
    /// consecutive calls and records the mean per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call, also used to calibrate the batch size.
        let calibrate = Instant::now();
        black_box(routine());
        let warm = calibrate.elapsed();
        let target = target_sample_time();
        let batch: u64 = if warm.is_zero() {
            target.as_nanos() as u64
        } else {
            (target.as_nanos() / warm.as_nanos().max(1)) as u64
        }
        .clamp(1, 1 << 24);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.per_iter
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Times `routine` with a fresh `setup()` value per call; only the
    /// routine is timed. One sample per call (setup cannot be batched away).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.per_iter.push(start.elapsed().as_secs_f64());
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.per_iter.push(start.elapsed().as_secs_f64());
        }
    }
}

/// Summary statistics over the per-iteration samples after outlier rejection.
struct Stats {
    min: f64,
    mean: f64,
    stddev: f64,
    kept: usize,
    outliers: usize,
}

/// Tukey-fence outlier rejection (1.5 × IQR beyond the quartiles), then
/// min/mean/stddev of the surviving samples.
fn analyze(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty(), "benchmark produced no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let quartile = |q: f64| -> f64 {
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    let (q1, q3) = (quartile(0.25), quartile(0.75));
    let iqr = q3 - q1;
    let (lo_fence, hi_fence) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|&s| (lo_fence..=hi_fence).contains(&s))
        .collect();
    let kept = if kept.is_empty() {
        sorted.clone()
    } else {
        kept
    };
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    let variance = kept.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / kept.len() as f64;
    Stats {
        min: kept[0],
        mean,
        stddev: variance.sqrt(),
        kept: kept.len(),
        outliers: samples.len() - kept.len(),
    }
}

fn report(id: &str, samples: &[f64], throughput: Option<Throughput>) {
    let stats = analyze(samples);
    let mut line = format!(
        "{id:<50} min {:>11.3?}  mean {:>11.3?} ± {:<9.3?} ({} samples",
        Duration::from_secs_f64(stats.min),
        Duration::from_secs_f64(stats.mean),
        Duration::from_secs_f64(stats.stddev),
        stats.kept,
    );
    if stats.outliers > 0 {
        line.push_str(&format!(", {} outliers", stats.outliers));
    }
    line.push(')');
    if let Some(t) = throughput {
        let rate = match t {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                format!("{:>10.1} MiB/s", n as f64 / stats.mean / (1024.0 * 1024.0))
            }
            Throughput::Elements(n) => format!("{:>10.0} elem/s", n as f64 / stats.mean),
        };
        line.push_str("  ");
        line.push_str(&rate);
    }
    println!("{line}");
}

/// Top-level benchmark driver (a drastically simplified `criterion::Criterion`).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: env_u64("HEAP_BENCH_SAMPLES").unwrap_or(10),
        }
    }
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, &b.per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<u64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group (overridden by
    /// `HEAP_BENCH_SAMPLES`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(env_u64("HEAP_BENCH_SAMPLES").unwrap_or(n as u64));
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim has no fixed time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is one untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.per_iter, self.throughput);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ( $group:ident, $($target:path),+ $(,)? ) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_computes_min_mean_stddev() {
        let stats = analyze(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.min, 1.0);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert!(stats.stddev > 0.0);
        assert_eq!(stats.kept, 4);
        assert_eq!(stats.outliers, 0);
    }

    #[test]
    fn analyze_rejects_extreme_outliers() {
        // Nine tight samples and one far outlier (e.g. a scheduler hiccup).
        let mut samples = vec![1.0; 9];
        samples.push(100.0);
        let stats = analyze(&samples);
        assert_eq!(stats.outliers, 1);
        assert_eq!(stats.kept, 9);
        assert!((stats.mean - 1.0).abs() < 1e-12);
        assert_eq!(stats.stddev, 0.0);
    }

    #[test]
    fn analyze_single_sample() {
        let stats = analyze(&[0.5]);
        assert_eq!(stats.min, 0.5);
        assert_eq!(stats.mean, 0.5);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(4);
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert_eq!(b.per_iter.len(), 4);
        assert!(b.per_iter.iter().all(|&s| s > 0.0));

        let mut b = Bencher::new(3);
        b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        assert_eq!(b.per_iter.len(), 3);

        let mut b = Bencher::new(3);
        b.iter_batched_ref(Vec::<u8>::new, |v| v.push(1), BatchSize::SmallInput);
        assert_eq!(b.per_iter.len(), 3);
    }
}
