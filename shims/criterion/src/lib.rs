//! Minimal, API-compatible stand-in for the subset of `criterion` used by
//! the workspace's benches.
//!
//! The build environment has no access to a cargo registry, so the external
//! `criterion` bench dependency is replaced by this in-tree shim. Benches are
//! declared exactly as with real criterion (`criterion_group!` /
//! `criterion_main!` with `harness = false`); running them executes each
//! benchmark a fixed number of iterations after a short warm-up and prints
//! mean wall-clock time per iteration (plus throughput when configured).
//! There is no statistical analysis, no HTML report and no saved baselines.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost. Ignored by the shim (every
/// iteration gets its own setup), the variants exist for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration (binary units in real criterion).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units in real criterion).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            total: Duration::ZERO,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` value per iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

fn report(id: &str, iters: u64, total: Duration, throughput: Option<Throughput>) {
    let per_iter = total.as_secs_f64() / iters.max(1) as f64;
    let mut line = format!(
        "{id:<50} {:>12.3?}/iter ({iters} iters)",
        Duration::from_secs_f64(per_iter)
    );
    if let Some(t) = throughput {
        let rate = match t {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                format!("{:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            Throughput::Elements(n) => format!("{:>10.0} elem/s", n as f64 / per_iter),
        };
        line.push_str("  ");
        line.push_str(&rate);
    }
    println!("{line}");
}

/// Top-level benchmark driver (a drastically simplified `criterion::Criterion`).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, b.iters, b.total, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<u64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim has no fixed time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is one untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iters = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(iters);
        f(&mut b);
        report(
            &format!("{}/{id}", self.name),
            b.iters,
            b.total,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ( $group:ident, $($target:path),+ $(,)? ) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
