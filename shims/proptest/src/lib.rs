//! Minimal, API-compatible stand-in for the subset of `proptest` used by
//! this workspace.
//!
//! The build environment has no access to a cargo registry, so the external
//! `proptest` dev-dependency is replaced by this in-tree shim. It supports:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `#[test]`
//!   attributes, doc comments, and both parameter forms
//!   (`name: Type` ≙ `any::<Type>()`, and `pat in strategy`),
//! * range strategies (`0u64..10_000`, `1u8..=255`, `-1e6f64..1e6`, ...),
//! * [`collection::vec`],
//! * [`prelude`] with `any`, `ProptestConfig`, `prop_assert!`,
//!   `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test draws `cases` deterministic samples (seeded from the module
//! path and line, so distinct tests see distinct streams) and runs the body,
//! with `prop_assert*` mapping to the std `assert*` macros.

pub mod strategy {
    //! The value-generation abstraction.
    use rand::distributions::uniform::SampleUniform;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies by the runner.
    pub type TestRng = SmallRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    // Tuples of strategies generate tuples of values, as in real proptest
    // (enough arities for the workspace's composite draws).
    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
}

pub mod arbitrary {
    //! `any::<T>()` support.
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec()`] (built from `a..b` or `a..=b`).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test RNG derivation.
    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Run-count and settings for one `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite quick while
            // still exercising each property broadly.
            Config { cases: 64 }
        }
    }

    /// Derives a deterministic RNG distinct per test function.
    ///
    /// Seeded from the module path and the test's own name (not `line!()`,
    /// which inside a `macro_rules` expansion resolves to the outermost
    /// invocation line and would collide for every test in one block).
    pub fn rng_for(module: &str, test: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in module.bytes().chain("::".bytes()).chain(test.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod prelude {
    //! Mirror of `proptest::prelude`.
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::Strategy;
    pub use super::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_params! {
                @munch cfg = ($cfg); name = ($name); acc = []; body = $body; $($params)*
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    // All parameters consumed: run the cases.
    ( @munch cfg = ($cfg:expr); name = ($tname:ident); acc = [$($acc:tt)*]; body = $body:block; ) => {
        $crate::__proptest_run! { cfg = ($cfg); name = ($tname); acc = [$($acc)*]; body = $body }
    };
    // `name: Type` (≙ any::<Type>()), more parameters follow.
    ( @munch cfg = ($cfg:expr); name = ($tname:ident); acc = [$($acc:tt)*]; body = $body:block;
      $pname:ident : $pty:ty, $($rest:tt)* ) => {
        $crate::__proptest_params! {
            @munch cfg = ($cfg);
            name = ($tname);
            acc = [$($acc)* { ($pname) ($crate::arbitrary::any::<$pty>()) }];
            body = $body; $($rest)*
        }
    };
    // `name: Type`, final parameter.
    ( @munch cfg = ($cfg:expr); name = ($tname:ident); acc = [$($acc:tt)*]; body = $body:block;
      $pname:ident : $pty:ty ) => {
        $crate::__proptest_params! {
            @munch cfg = ($cfg);
            name = ($tname);
            acc = [$($acc)* { ($pname) ($crate::arbitrary::any::<$pty>()) }];
            body = $body;
        }
    };
    // `pat in strategy`, more parameters follow.
    ( @munch cfg = ($cfg:expr); name = ($tname:ident); acc = [$($acc:tt)*]; body = $body:block;
      $ppat:pat in $pstrat:expr, $($rest:tt)* ) => {
        $crate::__proptest_params! {
            @munch cfg = ($cfg);
            name = ($tname);
            acc = [$($acc)* { ($ppat) ($pstrat) }];
            body = $body; $($rest)*
        }
    };
    // `pat in strategy`, final parameter.
    ( @munch cfg = ($cfg:expr); name = ($tname:ident); acc = [$($acc:tt)*]; body = $body:block;
      $ppat:pat in $pstrat:expr ) => {
        $crate::__proptest_params! {
            @munch cfg = ($cfg);
            name = ($tname);
            acc = [$($acc)* { ($ppat) ($pstrat) }];
            body = $body;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ( cfg = ($cfg:expr); name = ($tname:ident); acc = [$({ ($ppat:pat) ($pstrat:expr) })*]; body = $body:block ) => {{
        let __config: $crate::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::rng_for(module_path!(), stringify!($tname));
        for __case in 0..__config.cases {
            $( let $ppat = $crate::strategy::Strategy::sample(&($pstrat), &mut __rng); )*
            $body
        }
    }};
}

/// `prop_assert!` — plain `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
