//! Minimal in-tree stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on plain data types
//! (nothing serializes at runtime yet), so the traits are markers that are
//! blanket-implemented for every type, and the derive macros expand to
//! nothing. When a real serialization format is needed, replace this shim
//! with the actual serde crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
